"""Stress the task tree under resource starvation configurations.

Tiny bunch/token/L1 budgets force every contention path — spawn waits,
token stalls, head-of-line token scans, extension chains — while the
count-exactness invariant must keep holding.
"""

import pytest

from repro.graph import erdos_renyi_gnm, powerlaw_configuration
from repro.mining import count_matches
from repro.patterns import benchmark_schedule
from repro.sim import SimConfig, simulate
from repro.sim.accelerator import Accelerator

STARVED = dict(
    num_pes=1,
    bunches_per_depth=1,
    root_bunches=1,
    bunch_entries=2,
    execution_width=2,
    tokens_per_depth=1,
    l1_kb=1,
    l2_kb=16,
    spm_kb=1,
)


class TestStarvedTaskTree:
    @pytest.mark.parametrize("code", ["tc", "4cl", "tt_e", "dia_v", "4cyc_e"])
    def test_counts_exact_under_starvation(self, small_er, code):
        sched = benchmark_schedule(code)
        expected = count_matches(small_er, sched)
        metrics = simulate(small_er, sched, policy="shogun", config=SimConfig(**STARVED))
        assert metrics.matches == expected

    def test_spawn_waits_observed(self, small_er, sched_4cl):
        # More tokens than bunches: several Resting parents per depth
        # compete for the single child bunch and must queue.
        cfg = dict(STARVED, tokens_per_depth=4, execution_width=4)
        accel = Accelerator(small_er, sched_4cl, SimConfig(**cfg), "shogun")
        accel.run()
        tree = accel.pes[0].policy.tree
        assert tree.spawn_waits > 0

    def test_token_stalls_observed(self, small_er, sched_4cl):
        accel = Accelerator(small_er, sched_4cl, SimConfig(**STARVED), "shogun")
        accel.run()
        tree = accel.pes[0].policy.tree
        assert tree.token_stalls > 0  # one token per depth must contend

    def test_skewed_graph_under_starvation(self, skewed_graph):
        sched = benchmark_schedule("tt_e")
        expected = count_matches(skewed_graph, sched)
        metrics = simulate(
            skewed_graph, sched, policy="shogun", config=SimConfig(**STARVED)
        )
        assert metrics.matches == expected

    def test_width_exceeds_bunch_entries(self, small_er, sched_4cl):
        # Execution width larger than the bunch size: non-sibling mixing
        # is mandatory to fill the PE.
        cfg = SimConfig(
            num_pes=1, bunch_entries=2, execution_width=6, tokens_per_depth=6
        )
        expected = count_matches(small_er, sched_4cl)
        assert simulate(small_er, sched_4cl, policy="shogun", config=cfg).matches == expected

    def test_bunches_exceed_width(self, small_er, sched_4cl):
        cfg = SimConfig(
            num_pes=1, bunches_per_depth=8, bunch_entries=2,
            execution_width=2, tokens_per_depth=2,
        )
        expected = count_matches(small_er, sched_4cl)
        assert simulate(small_er, sched_4cl, policy="shogun", config=cfg).matches == expected


class TestStarvedOptimizations:
    def test_splitting_under_starvation(self):
        graph = powerlaw_configuration(60, 5.0, exponent=1.8, seed=21)
        sched = benchmark_schedule("4cl")
        expected = count_matches(graph, sched)
        cfg = SimConfig(
            num_pes=6, enable_splitting=True, lb_check_interval=50,
            bunches_per_depth=1, bunch_entries=2, execution_width=2,
            tokens_per_depth=2, l1_kb=1, l2_kb=16,
        )
        assert simulate(graph, sched, policy="shogun", config=cfg).matches == expected

    def test_merging_under_starvation(self):
        graph = erdos_renyi_gnm(50, 150, seed=13)
        sched = benchmark_schedule("tc")
        expected = count_matches(graph, sched)
        cfg = SimConfig(
            num_pes=2, enable_merging=True, root_bunches=2,
            bunches_per_depth=1, bunch_entries=2, execution_width=2,
            tokens_per_depth=2, l1_kb=1, l2_kb=16,
        )
        assert simulate(graph, sched, policy="shogun", config=cfg).matches == expected


class TestMemoryPortTiming:
    def test_fetch_port_serialization(self):
        from repro.sim import MemorySystem

        mem = MemorySystem(SimConfig(num_pes=1, fetch_ports=2))
        mem.install_intermediate(0, list(range(8)))
        done = mem.fetch_intermediate(0, list(range(8)), now=0.0)
        # 8 hits over 2 ports: last line issues at cycle 3, + hit latency.
        assert done == pytest.approx(3 + mem.config.l1_hit_cycles)
