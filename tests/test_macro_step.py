"""Macro-step engine core: differential parity and escape correctness.

The macro-step fast path (``sim/backend/macro.py`` +
``_loops.task_fastpath_loop`` and its compiled mirrors) must be
*bit-identical* to the per-event booking path — not approximately equal:
``repro validate`` and the golden registry diff every metric field.
Three layers enforce it here:

* **Booking parity** — whole simulations, all five policies × both
  golden patterns, macro forced on (interpreted reference loop under
  pure, plus every compiled backend that built) vs the per-event path:
  identical ``RunMetrics`` dicts.
* **Instrumented fallback** — a ``TraceRecorder`` on the PEs must push
  every task down the per-event path (hooks see per-stage behavior)
  while changing no accounted metric.
* **Escape/resume** — a hypothesis-driven fault hook forces escapes at
  random tasks; since escapes replay through the exact slow path,
  any mixture of fast/slow bookings must leave metrics unchanged.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import load_dataset
from repro.patterns import benchmark_schedule
from repro.sim import SimConfig, backend, simulate
from repro.sim.accelerator import Accelerator
from repro.sim.trace import TraceRecorder
from repro.validate.oracle import ORACLE_POLICIES

#: Backends that actually built on this machine (pure is always first).
AVAILABLE = ["pure"] + [
    name
    for name in ("numba", "cext")
    if backend.available_backends()[name][0]
]

SCALE = 0.2
PATTERNS = ("tc", "4cl")

CONFIG = SimConfig(backend="pure")


@pytest.fixture(autouse=True)
def _restore_backend():
    before = backend.active()
    yield
    backend._install(before)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("wi", scale=SCALE)


@pytest.fixture(scope="module")
def schedules():
    return {p: benchmark_schedule(p) for p in PATTERNS}


@pytest.fixture(scope="module")
def per_event_metrics(graph, schedules):
    """Per-event reference metrics for every (pattern, policy) cell."""
    ref = {}
    for pattern in PATTERNS:
        for policy in ORACLE_POLICIES:
            metrics = simulate(
                graph,
                schedules[pattern],
                policy=policy,
                config=CONFIG.replace(macro_step=False),
            )
            ref[pattern, policy] = metrics.to_dict()
    return ref


class TestMacroParity:
    """Macro vs per-event: byte-identical metrics on every cell."""

    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("policy", ORACLE_POLICIES)
    def test_macro_matches_per_event(
        self, graph, schedules, per_event_metrics, pattern, policy
    ):
        for name in AVAILABLE:
            accel = Accelerator(
                graph,
                schedules[pattern],
                CONFIG.replace(backend=name, macro_step=True),
                policy=policy,
            )
            metrics = accel.run()
            assert accel.macro is not None
            cov = accel.macro.coverage()
            assert cov["tasks"] == metrics.tasks_executed
            assert cov["drained"] > 0, f"{name}: fast path never drained"
            assert metrics.to_dict() == per_event_metrics[pattern, policy], (
                f"backend {name} macro-step metrics diverged on "
                f"{pattern}/{policy}"
            )

    def test_macro_auto_resolution(self, graph, schedules):
        """auto = on exactly when the active backend is compiled;
        False pins the per-event path even there."""
        accel = Accelerator(
            graph, schedules["tc"], CONFIG, policy="shogun"
        )
        assert accel.macro is None  # pure + auto: interpreted loop loses
        compiled = [n for n in AVAILABLE if n != "pure"]
        if compiled:
            accel = Accelerator(
                graph,
                schedules["tc"],
                CONFIG.replace(backend=compiled[0]),
                policy="shogun",
            )
            assert accel.macro is not None
            accel = Accelerator(
                graph,
                schedules["tc"],
                CONFIG.replace(backend=compiled[0], macro_step=False),
                policy="shogun",
            )
            assert accel.macro is None


class TestInstrumentedFallback:
    """Recorder/checker hooks force the per-event path, metrics intact."""

    def test_trace_recorder_forces_per_event(
        self, graph, schedules, per_event_metrics
    ):
        accel = Accelerator(
            graph,
            schedules["tc"],
            CONFIG.replace(macro_step=True),
            policy="shogun",
        )
        recorder = TraceRecorder.attach(accel)
        metrics = accel.run()
        counters = accel.macro.counters
        assert counters["instrumented"] == metrics.tasks_executed
        assert counters["fast"] == 0 and counters["partial"] == 0
        assert metrics.to_dict() == per_event_metrics["tc", "shogun"]
        assert recorder.spans  # the hooks really observed the tasks

    def test_uninstrumented_pe_drains_fast(self, graph, schedules):
        accel = Accelerator(
            graph,
            schedules["tc"],
            CONFIG.replace(macro_step=True),
            policy="shogun",
        )
        metrics = accel.run()
        cov = accel.macro.coverage()
        assert cov["tasks"] == metrics.tasks_executed
        assert cov["drained_fraction"] > 0.5


class TestEscapeResume:
    """Random escape points resume without dropping or reordering work."""

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        rate=st.floats(min_value=0.05, max_value=0.95),
    )
    def test_random_fault_injection_is_invisible(
        self, graph, schedules, per_event_metrics, seed, rate
    ):
        import random

        rng = random.Random(seed)
        accel = Accelerator(
            graph,
            schedules["tc"],
            CONFIG.replace(macro_step=True),
            policy="shogun",
        )
        accel.macro.fault_hook = lambda pe, task: rng.random() < rate
        metrics = accel.run()
        counters = accel.macro.counters
        assert counters["injected"] > 0
        assert metrics.to_dict() == per_event_metrics["tc", "shogun"]

    def test_alternating_escapes(self, graph, schedules, per_event_metrics):
        """Deterministic worst case: every other task escapes."""
        accel = Accelerator(
            graph,
            schedules["4cl"],
            CONFIG.replace(macro_step=True),
            policy="shogun",
        )
        toggle = [False]

        def hook(pe, task):
            toggle[0] = not toggle[0]
            return toggle[0]

        accel.macro.fault_hook = hook
        metrics = accel.run()
        assert accel.macro.counters["injected"] > 0
        assert metrics.to_dict() == per_event_metrics["4cl", "shogun"]
