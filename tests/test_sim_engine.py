"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine


class TestScheduling:
    def test_time_order(self):
        engine = Engine()
        log = []
        engine.at(5, lambda: log.append("b"))
        engine.at(2, lambda: log.append("a"))
        engine.at(9, lambda: log.append("c"))
        engine.run()
        assert log == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        engine = Engine()
        log = []
        for tag in "abc":
            engine.at(1, lambda t=tag: log.append(t))
        engine.run()
        assert log == ["a", "b", "c"]

    def test_after(self):
        engine = Engine()
        seen = []
        engine.at(10, lambda: engine.after(5, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [15]

    def test_past_scheduling_rejected(self):
        engine = Engine()
        engine.at(10, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.at(5, lambda: None)

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.after(-1, lambda: None)

    def test_zero_delay_runs_same_time(self):
        engine = Engine()
        log = []
        engine.at(3, lambda: engine.after(0, lambda: log.append(engine.now)))
        engine.run()
        assert log == [3]


class TestRunControl:
    def test_until(self):
        engine = Engine()
        log = []
        engine.at(1, lambda: log.append(1))
        engine.at(100, lambda: log.append(100))
        engine.run(until=50)
        assert log == [1]
        assert engine.pending() == 1

    def test_max_events(self):
        engine = Engine()
        log = []
        for t in range(5):
            engine.at(t, lambda t=t: log.append(t))
        executed = engine.run(max_events=3)
        assert executed == 3
        assert log == [0, 1, 2]

    def test_cascading_events(self):
        engine = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10:
                engine.after(1, tick)

        engine.after(1, tick)
        engine.run()
        assert count[0] == 10
        assert engine.now == 10

    def test_empty_run(self):
        engine = Engine()
        assert engine.run() == 0
        assert engine.now == 0.0


class TestDeterminism:
    """Regression tests pinning event order across runs and drain loops."""

    @staticmethod
    def _storm(engine, log):
        """A same-cycle-heavy workload: cascading callbacks that schedule
        zero-delay and future events from inside the drain loop."""
        def emit(tag):
            log.append((engine.now, tag))
            if len(tag) < 3:
                engine.after(0, lambda: emit(tag + "x"))
                engine.after(3, lambda: emit(tag + "y"))

        for start, tag in ((2, "a"), (2, "b"), (5, "c"), (11, "d")):
            engine.at(start, lambda t=tag: emit(t))

    def test_event_order_identical_across_runs(self):
        logs = []
        for _ in range(2):
            engine = Engine()
            log = []
            self._storm(engine, log)
            engine.run()
            logs.append(log)
        assert logs[0] == logs[1]
        assert len(logs[0]) > 10  # the storm actually cascaded

    def test_coalesced_and_legacy_loops_agree(self):
        # max_events=None takes the same-cycle coalescing drain loop;
        # a huge max_events takes the legacy per-event loop.  Both must
        # produce the identical (time, tag) sequence and final clock.
        runs = []
        for max_events in (None, 10_000):
            engine = Engine()
            log = []
            self._storm(engine, log)
            engine.run(max_events=max_events)
            runs.append((log, engine.now))
        assert runs[0] == runs[1]

    def test_coalesced_until_boundary_matches_legacy(self):
        runs = []
        for max_events in (None, 10_000):
            engine = Engine()
            log = []
            self._storm(engine, log)
            engine.run(until=5, max_events=max_events)
            runs.append((log, engine.now, engine.pending()))
        assert runs[0] == runs[1]
