"""Unit tests for the conservative-mode locality monitor."""

import pytest

from repro.core import LocalityMonitor
from repro.errors import ConfigError
from repro.sim import SimConfig


def monitor(**overrides):
    return LocalityMonitor(SimConfig(num_pes=1, **overrides))


BAD = dict(l1_avg_latency=80.0, iu_utilization=0.1)   # thrash + starving
GOOD = dict(l1_avg_latency=3.0, iu_utilization=0.8)


class TestEntry:
    def test_starts_normal(self):
        assert not monitor().conservative

    def test_enters_on_both_conditions(self):
        m = monitor()
        assert m.observe(**BAD)
        assert m.conservative
        assert m.entries == 1

    def test_latency_alone_not_enough(self):
        m = monitor()
        assert not m.observe(l1_avg_latency=80.0, iu_utilization=0.9)

    def test_low_util_alone_not_enough(self):
        m = monitor()
        assert not m.observe(l1_avg_latency=3.0, iu_utilization=0.1)

    def test_threshold_boundaries(self):
        m = monitor()
        # Exactly at the thresholds: not strictly beyond -> stay normal.
        assert not m.observe(l1_avg_latency=50.0, iu_utilization=0.5)


class TestExit:
    def test_needs_consecutive_clear_epochs(self):
        m = monitor(monitor_exit_epochs=2)
        m.observe(**BAD)
        m.observe(**GOOD)
        assert m.conservative  # only one clear epoch
        m.observe(**GOOD)
        assert not m.conservative

    def test_streak_resets_on_relapse(self):
        m = monitor(monitor_exit_epochs=2)
        m.observe(**BAD)
        m.observe(**GOOD)
        m.observe(**BAD)
        m.observe(**GOOD)
        assert m.conservative

    def test_reentry_counts(self):
        m = monitor(monitor_exit_epochs=1)
        m.observe(**BAD)
        m.observe(**GOOD)
        m.observe(**BAD)
        assert m.entries == 2


class TestAccounting:
    def test_fraction(self):
        m = monitor(monitor_exit_epochs=1)
        m.observe(**GOOD)
        m.observe(**BAD)
        m.observe(**GOOD)
        m.observe(**GOOD)
        assert m.observations == 4
        assert m.conservative_fraction == pytest.approx(0.25)

    def test_fraction_empty(self):
        assert monitor().conservative_fraction == 0.0

    def test_bad_config(self):
        with pytest.raises(ConfigError):
            LocalityMonitor(SimConfig(num_pes=1, monitor_exit_epochs=0))
