"""Tests for the live invariant checker (repro.validate.invariants).

Two halves:

* clean runs — every policy (plus a splitting-heavy workload) passes with
  zero violations, and attaching the checker never changes the metrics;
* mutation smoke tests — corrupt exactly one counter after (or during)
  the run and assert the checker reports exactly that violation class.
"""

from __future__ import annotations

import json

import pytest

from repro.graph import powerlaw_configuration
from repro.sim import SimConfig
from repro.sim.accelerator import Accelerator, simulate
from repro.validate import InvariantChecker, checked_simulate
from repro.validate.invariants import VIOLATION_CODES
from repro.validate.oracle import ORACLE_POLICIES


def run_mutated(graph, schedule, config, *, policy="shogun",
                pre_run=None, post_run=None):
    """Attach, optionally sabotage, run, finalize; returns the checker."""
    accel = Accelerator(graph, schedule, config, policy)
    checker = InvariantChecker.attach(accel)
    if pre_run is not None:
        pre_run(accel, checker)
    metrics = accel.run()
    if post_run is not None:
        post_run(accel, checker)
    checker.finalize(metrics)
    return checker


def fired(checker):
    return {v.code for v in checker.violations}


class TestCleanRuns:
    @pytest.mark.parametrize("policy", ORACLE_POLICIES)
    def test_all_policies_clean(self, small_er, sched_tc, policy):
        metrics, checker = checked_simulate(
            small_er, sched_tc, policy=policy, config=SimConfig(num_pes=2)
        )
        assert checker.ok, checker.report()
        assert metrics.matches == checker.matches_seen
        assert "all invariants hold" in checker.report()

    def test_finalize_is_idempotent(self, small_er, sched_tc):
        _, checker = checked_simulate(
            small_er, sched_tc, config=SimConfig(num_pes=2)
        )
        first = list(checker.finalize())
        second = list(checker.finalize())
        assert first == second == []

    def test_splitting_run_clean(self, sched_4cl):
        # Hub-heavy graph + tight LB interval: splitting actually fires,
        # exercising the NoC/partition conservation laws.
        graph = powerlaw_configuration(
            200, target_avg_degree=12.0, exponent=1.7, seed=5, name="pl200"
        )
        config = SimConfig(
            num_pes=8, enable_splitting=True, lb_check_interval=50,
            l1_kb=4, l2_kb=64,
        )
        _, checker = checked_simulate(graph, sched_4cl, config=config)
        assert checker.accel.partitions_sent > 0
        assert checker.partitions_received == checker.accel.partitions_sent
        assert checker.ok, checker.report()

    def test_checker_is_non_invasive(self, small_er, sched_4cl):
        config = SimConfig(num_pes=2)
        plain = simulate(small_er, sched_4cl, policy="shogun", config=config)
        checked, checker = checked_simulate(
            small_er, sched_4cl, policy="shogun", config=config
        )
        assert checker.ok, checker.report()
        assert json.dumps(plain.to_dict(), sort_keys=True) == json.dumps(
            checked.to_dict(), sort_keys=True
        )

    def test_spawn_books_balance(self, medium_er, sched_4cl):
        _, checker = checked_simulate(
            medium_er, sched_4cl, config=SimConfig(num_pes=4)
        )
        assert checker.ok, checker.report()
        assert checker.tasks_completed == (
            checker.roots_added + checker.children_spawned
        )


class TestMutations:
    """Each test corrupts one counter and expects exactly one law to fire."""

    @pytest.fixture()
    def base(self, small_er, sched_tc):
        return small_er, sched_tc, SimConfig(num_pes=2)

    def test_task_conservation(self, base):
        def drop_completion(accel, checker):
            accel.pes[0].tasks_executed -= 1

        checker = run_mutated(*base, post_run=drop_completion)
        assert fired(checker) == {"task-conservation"}

    def test_match_conservation(self, base):
        def double_count_match(accel, checker):
            accel.pes[0].matches += 1

        checker = run_mutated(*base, post_run=double_count_match)
        assert fired(checker) == {"match-conservation"}

    def test_cache_accounting(self, base):
        def double_count_hit(accel, checker):
            accel.memory.l1s[0].hits += 1

        checker = run_mutated(*base, post_run=double_count_hit)
        assert fired(checker) == {"cache-accounting"}

    def test_noc_conservation(self, base):
        def phantom_message(accel, checker):
            accel.memory.noc.messages += 1

        checker = run_mutated(*base, post_run=phantom_message)
        assert fired(checker) == {"noc-conservation"}

    def test_tree_completion_count(self, base):
        def phantom_tree(accel, checker):
            accel.pes[0].policy.trees_completed += 1

        checker = run_mutated(*base, post_run=phantom_tree)
        assert fired(checker) == {"tree-completion"}

    def test_tree_completed_twice(self, base):
        def replay_done(accel, checker):
            tree_id = next(iter(checker._done_tree_ids))
            # Re-deliver a completion the checker already saw; the wrapped
            # callback flags the duplicate immediately.
            accel.pes[0].policy.tree.on_tree_done(tree_id)

        checker = run_mutated(*base, post_run=replay_done)
        assert fired(checker) == {"tree-completion"}
        assert any("more than once" in v.message for v in checker.violations)

    def test_token_accounting(self, base):
        def leak_token(accel, checker):
            pools = accel.pes[0].policy.tree.tokens
            # Drop a free-count unit: held rises without an acquire.
            next(iter(pools.values()))._count[0] -= 1

        checker = run_mutated(*base, post_run=leak_token)
        assert fired(checker) == {"token-accounting"}

    def test_pruning_conservation(self, base):
        def phantom_prune(accel, checker):
            accel.context.children_pruned += 1

        checker = run_mutated(*base, post_run=phantom_prune)
        assert fired(checker) == {"pruning-conservation"}

    def test_footprint(self, base):
        def leak_bytes(accel, checker):
            accel._footprint = 64

        checker = run_mutated(*base, post_run=leak_bytes)
        assert fired(checker) == {"footprint"}

    def test_time_monotonic(self, base):
        def rewind_clock(accel, checker):
            checker._last_now = accel.engine.now + 1
            checker._observe_time()

        checker = run_mutated(*base, post_run=rewind_clock)
        assert fired(checker) == {"time-monotonic"}

    def test_slot_occupancy(self, base):
        def oversubscribe(accel, checker):
            pe = accel.pes[0]
            width = pe.config.execution_width
            inner = pe._start_task  # the checker's wrapper

            def outer(task):
                # Inflate occupancy only while the checker looks at it, so
                # the simulation itself is unaffected.
                pe.slots_used += width
                try:
                    return inner(task)
                finally:
                    pe.slots_used -= width

            pe._start_task = outer

        checker = run_mutated(*base, pre_run=oversubscribe)
        assert fired(checker) == {"slot-occupancy"}

    def test_spawn_conservation(self, base):
        def phantom_spawn(accel, checker):
            checker.children_spawned += 1

        checker = run_mutated(*base, post_run=phantom_spawn)
        # children_spawned feeds both the spawn ledger and the pruning
        # cross-check, so the pruning law may fire alongside.
        assert "spawn-conservation" in fired(checker)
        assert fired(checker) <= {"spawn-conservation", "pruning-conservation"}

    def test_every_code_is_catalogued(self, base):
        mutants = [
            "task-conservation", "spawn-conservation", "pruning-conservation",
            "tree-completion", "match-conservation", "slot-occupancy",
            "cache-accounting", "token-accounting", "noc-conservation",
            "footprint", "time-monotonic",
        ]
        assert set(mutants) == set(VIOLATION_CODES)
