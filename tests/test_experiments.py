"""Tests for the experiment harness (runner, workloads, tables, figures).

Figures run at a tiny dataset scale with reduced grids so the whole file
stays fast while still executing every harness code path end to end.
"""

import pytest

from repro.errors import SimulationError
from repro.experiments import (
    EXCLUDED,
    clear_run_cache,
    eval_config,
    evaluation_grid,
    figure3a,
    figure3b,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13a,
    figure13b,
    figure14,
    patterns_for,
    percent,
    reference_count,
    render_table,
    run_cell,
    table1,
    table2,
    table3,
    table4,
)

SCALE = 0.12  # tiny stand-ins: every dataset tens of vertices


@pytest.fixture(autouse=True, scope="module")
def _clean_cache():
    clear_run_cache()
    yield
    clear_run_cache()


class TestWorkloads:
    def test_grid_size(self):
        assert len(evaluation_grid()) == 49

    def test_exclusions_absent(self):
        grid = evaluation_grid()
        for cell in EXCLUDED:
            assert cell not in grid

    def test_patterns_for(self):
        assert "5cl" in patterns_for("wi")
        assert "5cl" not in patterns_for("or")
        assert len(patterns_for("or")) == 5


class TestRunner:
    def test_eval_config_is_table3_scaled(self):
        cfg = eval_config()
        assert cfg.num_pes == 10
        assert cfg.execution_width == 8
        assert cfg.task_tree_entries() == 178
        assert cfg.l1_kb < 32  # scaled hierarchy

    def test_eval_config_overrides(self):
        assert eval_config(num_pes=3).num_pes == 3

    def test_run_cell_verifies_and_caches(self):
        a = run_cell("wi", "tc", "shogun", scale=SCALE)
        b = run_cell("wi", "tc", "shogun", scale=SCALE)
        assert a is b
        assert a.matches == reference_count("wi", "tc", scale=SCALE)

    def test_distinct_configs_not_conflated(self):
        a = run_cell("wi", "tc", "shogun", scale=SCALE)
        c = run_cell("wi", "tc", "shogun", config=eval_config(num_pes=2), scale=SCALE)
        assert a is not c


class TestDefaultScale:
    def test_reads_environment_lazily(self, monkeypatch):
        from repro.experiments import default_scale

        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert default_scale() == 0.25
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert default_scale() == 0.5
        monkeypatch.delenv("REPRO_SCALE")
        assert default_scale() == 1.0

    def test_deprecated_alias_tracks_environment(self, monkeypatch):
        import repro.experiments
        import repro.experiments.runner as runner

        monkeypatch.setenv("REPRO_SCALE", "0.3")
        with pytest.warns(DeprecationWarning):
            assert runner.DEFAULT_SCALE == 0.3
        # The package-level re-export resolves lazily too.
        with pytest.warns(DeprecationWarning):
            assert repro.experiments.DEFAULT_SCALE == 0.3


class TestReporting:
    def test_render_table_aligns(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["xyz", 0.123]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "xyz" in text and "0.123" in text

    def test_percent(self):
        assert percent(1.43) == "+43%"
        assert percent(0.9) == "-10%"


class TestTables:
    def test_table1(self):
        result = table1("wi", "tc", scale=SCALE)
        assert len(result.rows) == 4
        assert "bfs" in result.render()

    def test_table2(self):
        result = table2(datasets=["wi", "pa"], scale=SCALE)
        assert len(result.rows) == 2
        assert all(isinstance(row[1], float) for row in result.rows)

    def test_table3_mentions_task_tree(self):
        assert "178" in table3().render()

    def test_table4_lists_all_datasets(self):
        result = table4(scale=SCALE)
        assert len(result.rows) == 6
        assert "Wiki-Vote" in result.render()


class TestFigures:
    def test_figure3a(self):
        result = figure3a(widths=(1, 2), scale=SCALE)
        assert len(result.rows) == 2
        assert result.rows[0][1] == 1.0  # normalized baseline

    def test_figure3b(self):
        result = figure3b(widths=(1, 2), scale=SCALE)
        assert "hit" in result.headers[2]

    def test_figure9_and_10_share_runs(self):
        grid = [("wi", "tc"), ("pa", "tc")]
        f9 = figure9(scale=SCALE, grid=grid)
        f10 = figure10(scale=SCALE, grid=grid)
        assert len(f9.rows) == 2 and len(f10.rows) == 2
        assert f9.raw["geomean"] > 0

    def test_figure11(self):
        result = figure11("wi", num_pes=4, scale=SCALE)
        assert len(result.rows) == len(patterns_for("wi"))

    def test_figure12(self):
        result = figure12(scale=SCALE, grid=[("pa", "tc")])
        assert result.raw["geomean_merged"] > 0

    def test_figure13a(self):
        result = figure13a(widths=(2, 4), cells=[("wi", "tc")], scale=SCALE)
        assert len(result.rows) == 2

    def test_figure13b(self):
        result = figure13b(bunch_counts=(2, 4), cells=[("wi", "tc")], scale=SCALE)
        assert result.rows[0][2] == 1.0

    def test_figure14(self):
        result = figure14(cells=[("wi", "tc")], scale=SCALE)
        assert len(result.rows) == 2  # two L1 configs x one cell

    def test_render_includes_summary(self):
        result = figure9(scale=SCALE, grid=[("wi", "tc")])
        assert "geomean" in result.render()
