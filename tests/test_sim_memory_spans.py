"""Span-native memory hierarchy: equivalence with the sequence paths.

The span entry points (`Cache.access_span` / `Cache.insert_span`,
`MemorySystem.fetch_intermediate_span` / `fetch_graph_spans` /
`install_intermediate_span`) must reproduce the per-line sequence
implementations **bit-for-bit**: identical returned times, cache
hit/miss/eviction counts, LRU stamp state, bank/channel bookings and
latency-window folds.  These tests drive both sides over recorded random
traces and compare the complete observable state.

Also here: the strided multi-round chunk helpers
(`span_round_chunk` / `spans_round_chunk`) against the historical
``lines[r::rounds]`` slicing they replaced, and the small-SPM multi-round
path end-to-end (round counts, per-round chunk sizes, and golden
equality of span-chunked vs slice-chunked metrics).
"""

import random

import numpy as np
import pytest

from repro.graph import from_edges
from repro.mining import count_matches
from repro.patterns import benchmark_schedule
from repro.sim import Cache, ReferenceCache, SimConfig, simulate
from repro.sim.memory import MemorySystem, span_round_chunk, spans_round_chunk
import repro.sim.pe as pe_module


def random_spans(rng, num, max_line=400, max_width=24):
    spans = []
    for _ in range(num):
        first = rng.randrange(max_line)
        spans.append((first, first + rng.randrange(max_width)))
    return spans


def cache_state(cache):
    return (
        cache.hits,
        cache.misses,
        cache.evictions,
        cache._tick,
        dict(cache._where),
        cache._tags.tolist(),
        cache._stamps.tolist(),
        list(cache._fill),
    )


def memory_state(mem):
    l1 = mem.l1s[0]
    w = mem.l1_windows[0]
    return (
        cache_state(l1),
        cache_state(mem.l2),
        list(mem._l2_bank_free),
        (w.value, w.samples, w.total_latency),
        (mem.dram.requests, mem.dram.busy_cycles, list(mem.dram._channel_free)),
        (mem.graph_line_fetches, mem.intermediate_line_fetches),
    )


class TestCacheSpanKernels:
    def test_access_span_matches_sequential_and_reference(self):
        rng = random.Random(11)
        spans = random_spans(rng, 300)
        flat = Cache(16 * 1024, 4, 64)
        seq = Cache(16 * 1024, 4, 64)
        ref = ReferenceCache(16 * 1024, 4, 64)
        for first, last in spans:
            mask = flat.access_span(first, last)
            expect = []
            for addr in range(first, last + 1):
                hit = seq.lookup(addr)
                assert ref.lookup(addr) == hit
                expect.append(hit)
            assert mask.tolist() == expect
            # Occasionally fill the misses so later spans mix hits in.
            if rng.random() < 0.6:
                for addr in range(first, last + 1):
                    if not flat.contains(addr):
                        flat.insert(addr)
                    if not seq.contains(addr):
                        seq.insert(addr)
                    if not ref.contains(addr):
                        ref.insert(addr)
            assert cache_state(flat) == cache_state(seq)
            assert (flat.hits, flat.misses, flat.evictions) == (
                ref.hits, ref.misses, ref.evictions,
            )

    def test_insert_span_matches_sequential_walk(self):
        rng = random.Random(13)
        spans = random_spans(rng, 300, max_line=600, max_width=40)
        flat = Cache(8 * 1024, 2, 64)
        seq = Cache(8 * 1024, 2, 64)
        for first, last in spans:
            evicted = flat.insert_span(first, last)
            expect = []
            for addr in range(first, last + 1):
                out = seq.insert(addr)
                if out is not None:
                    expect.append(out)
            assert evicted == expect
            assert cache_state(flat) == cache_state(seq)

    def test_insert_span_all_resident_fast_path(self):
        cache = Cache(16 * 1024, 4, 64)
        assert cache.insert_span(10, 40) == []  # first touch: fills
        tick_before = cache._tick
        assert cache.insert_span(10, 40) == []  # all resident: refresh
        assert cache._tick == tick_before + 31
        # LRU order after the refresh matches address order.
        stamps = [int(cache._stamps[cache._where[a]]) for a in range(10, 41)]
        assert stamps == sorted(stamps)

    def test_access_span_empty(self):
        cache = Cache(16 * 1024, 4, 64)
        assert cache.access_span(5, 4).tolist() == []
        assert cache.insert_span(5, 4) == []
        assert (cache.hits, cache.misses) == (0, 0)


def build_pair(**cfg):
    config = SimConfig(num_pes=1, **cfg)
    return MemorySystem(config, num_pes=1), MemorySystem(config, num_pes=1)


class TestMemorySystemSpanEquivalence:
    def test_fetch_intermediate_span_vs_sequence(self):
        rng = random.Random(21)
        span_mem, seq_mem = build_pair()
        now = 0.0
        for step in range(250):
            first = rng.randrange(200)
            last = first + rng.randrange(20)
            if rng.random() < 0.5:  # warm some spans so hits dominate
                span_mem.warm_l1_span(0, first, last)
                seq_mem.warm_l1(0, list(range(first, last + 1)))
            record = rng.random() < 0.8
            t_span = span_mem.fetch_intermediate_span(
                0, first, last, now, record_window=record
            )
            t_seq = seq_mem.fetch_intermediate(
                0, list(range(first, last + 1)), now, record_window=record
            )
            assert t_span == t_seq
            assert memory_state(span_mem) == memory_state(seq_mem)
            now = t_span + rng.randrange(3)

    def test_fetch_graph_spans_vs_sequence(self):
        rng = random.Random(22)
        span_mem, seq_mem = build_pair()
        now = 0.0
        for step in range(150):
            spans = random_spans(rng, rng.randrange(1, 5), max_line=300)
            lines = [a for f, l in spans for a in range(f, l + 1)]
            t_span = span_mem.fetch_graph_spans(0, spans, now)
            t_seq = seq_mem.fetch_graph(0, lines, now)
            assert t_span == t_seq
            assert memory_state(span_mem) == memory_state(seq_mem)
            now = t_span + rng.randrange(3)

    def test_fetch_graph_spans_wide_resident(self):
        # Wide spans (>= 8 lines) take the vectorized probe path.
        span_mem, seq_mem = build_pair()
        spans = [(0, 63), (32, 127), (100, 250)]
        lines = [a for f, l in spans for a in range(f, l + 1)]
        t0s = span_mem.fetch_graph_spans(0, spans, 0.0)
        t0q = seq_mem.fetch_graph(0, lines, 0.0)
        assert t0s == t0q  # cold: every span replays through the walk
        t1s = span_mem.fetch_graph_spans(0, spans, t0s)
        t1q = seq_mem.fetch_graph(0, lines, t0q)
        assert t1s == t1q  # warm: all-hit fast path
        assert memory_state(span_mem) == memory_state(seq_mem)
        assert span_mem.l2.hits >= len(lines)
        # Back-to-back fetches without advancing `now`: the banks are
        # booked past the arrivals, so the stream-mode head check must
        # bail out to the exact per-line recurrence.
        for _ in range(3):
            t1s = span_mem.fetch_graph_spans(0, spans, t0s)
            t1q = seq_mem.fetch_graph(0, lines, t0q)
            assert t1s == t1q
        assert memory_state(span_mem) == memory_state(seq_mem)

    def test_install_intermediate_span_vs_sequence(self):
        rng = random.Random(23)
        span_mem, seq_mem = build_pair(l1_kb=2)
        for step in range(400):
            first = rng.randrange(300)
            last = first + rng.randrange(30)
            span_mem.install_intermediate_span(0, first, last)
            seq_mem.install_intermediate(0, list(range(first, last + 1)))
            assert memory_state(span_mem) == memory_state(seq_mem)

    def test_line_span_matches_line_addrs(self):
        mem, _ = build_pair()
        assert mem.line_span(0, 0) is None
        assert mem.line_addrs(0, 0) == []
        for base in (0, 1, 63, 64, 130, 64 * 9 + 17):
            for num_bytes in (1, 4, 63, 64, 65, 640):
                span = mem.line_span(base, num_bytes)
                assert span is not None
                assert mem.line_addrs(base, num_bytes) == list(
                    range(span[0], span[1] + 1)
                )


class TestRoundChunkHelpers:
    def test_span_chunk_equals_slice(self):
        rng = random.Random(31)
        for _ in range(300):
            first = rng.randrange(100)
            last = first + rng.randrange(40)
            rounds = rng.randrange(1, 8)
            lines = list(range(first, last + 1))
            for r in range(rounds):
                assert (
                    list(span_round_chunk(first, last, r, rounds))
                    == lines[r::rounds]
                )

    def test_spans_chunk_equals_concat_slice(self):
        rng = random.Random(32)
        for _ in range(300):
            spans = random_spans(rng, rng.randrange(1, 6), max_line=80, max_width=12)
            concat = [a for f, l in spans for a in range(f, l + 1)]
            rounds = rng.randrange(1, 8)
            chunks = [spans_round_chunk(spans, r, rounds) for r in range(rounds)]
            assert chunks == [concat[r::rounds] for r in range(rounds)]
            # Chunks partition the concatenation: sizes differ by at most
            # one and every line lands in exactly one round.
            sizes = [len(c) for c in chunks]
            assert sum(sizes) == len(concat)
            assert max(sizes) - min(sizes) <= 1
            merged = [a for c in chunks for a in c]
            assert sorted(merged) == sorted(concat)


@pytest.fixture()
def star_graph():
    """A hub of degree 40 plus a clique among the first few leaves."""
    edges = [(0, i) for i in range(1, 41)]
    edges += [(i, j) for i in range(1, 6) for j in range(i + 1, 6)]
    return from_edges(edges)


class TestMultiRoundSPM:
    """The `total_lines > spm_share` path (§3.1 multi-round execution)."""

    TINY = dict(num_pes=1, spm_kb=1, l1_kb=2, l2_kb=32)

    def test_small_spm_triggers_rounds(self, star_graph):
        sched = benchmark_schedule("tc")
        expected = count_matches(star_graph, sched)
        from repro.sim.accelerator import Accelerator

        accel = Accelerator(star_graph, sched, SimConfig(**self.TINY), "shogun")
        accel.run()
        pe = accel.pes[0]
        assert pe.matches == expected
        assert pe.multi_round_tasks > 0
        # A roomy SPM never rounds.
        roomy = Accelerator(
            star_graph, sched, SimConfig(num_pes=1, spm_kb=64), "shogun"
        )
        roomy.run()
        assert roomy.pes[0].multi_round_tasks == 0

    def test_round_count_and_chunk_sizes(self, star_graph, monkeypatch):
        """Each multi-round task runs ceil(total/spm_share) rounds and the
        graph chunks partition the span lines with near-equal sizes."""
        sched = benchmark_schedule("tc")
        calls = []

        real = spans_round_chunk

        def recording(spans, r, rounds):
            chunk = real(spans, r, rounds)
            calls.append((tuple(spans), r, rounds, len(chunk)))
            return chunk

        monkeypatch.setattr(pe_module, "spans_round_chunk", recording)
        from repro.sim.accelerator import Accelerator

        accel = Accelerator(star_graph, sched, SimConfig(**self.TINY), "shogun")
        accel.run()
        pe = accel.pes[0]
        assert calls, "tiny SPM must drive the multi-round path"

        # Group per task: consecutive calls share (spans, rounds) and r
        # runs 0..rounds-1.
        idx = 0
        tasks = 0
        while idx < len(calls):
            spans, r0, rounds, _ = calls[idx]
            assert r0 == 0
            group = calls[idx : idx + rounds]
            assert [c[1] for c in group] == list(range(rounds))
            assert all(c[0] == spans and c[2] == rounds for c in group)
            total = sum(l - f + 1 for f, l in spans)
            sizes = [c[3] for c in group]
            assert sum(sizes) == total
            assert max(sizes) - min(sizes) <= 1
            # Rounds come from the *full* working set (graph + reused
            # intermediate + output lines), so the graph-only total is a
            # lower bound: ceil(total/share) <= rounds.
            assert rounds >= -(-total // pe.spm_share)
            idx += rounds
            tasks += 1
        assert tasks == pe.multi_round_tasks

    def test_span_chunks_equal_slice_chunks_golden(self, star_graph, monkeypatch):
        """Metrics are identical whether rounds chunk spans arithmetically
        or via the historical list-slicing implementation."""
        sched = benchmark_schedule("tc")
        arithmetic = simulate(
            star_graph, sched, policy="shogun", config=SimConfig(**self.TINY)
        )

        def slice_span(first, last, r, rounds):
            return list(range(first, last + 1))[r::rounds]

        def slice_spans(spans, r, rounds):
            concat = [a for f, l in spans for a in range(f, l + 1)]
            return concat[r::rounds]

        monkeypatch.setattr(pe_module, "span_round_chunk", slice_span)
        monkeypatch.setattr(pe_module, "spans_round_chunk", slice_spans)
        sliced = simulate(
            star_graph, sched, policy="shogun", config=SimConfig(**self.TINY)
        )
        assert arithmetic.to_dict() == sliced.to_dict()
