"""Unit + property tests for the synthetic graph generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import (
    degree_sorted,
    erdos_renyi_gnm,
    powerlaw_cluster,
    powerlaw_configuration,
    random_regularish,
)
from repro.graph.stats import degree_skewness, global_clustering


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi_gnm(50, 200, seed=1)
        assert g.num_edges == 200
        assert g.num_vertices == 50

    def test_deterministic(self):
        a = erdos_renyi_gnm(40, 100, seed=5)
        b = erdos_renyi_gnm(40, 100, seed=5)
        assert np.array_equal(a.indices, b.indices)

    def test_seed_changes_graph(self):
        a = erdos_renyi_gnm(40, 100, seed=5)
        b = erdos_renyi_gnm(40, 100, seed=6)
        assert not np.array_equal(a.indices, b.indices)

    def test_too_many_edges(self):
        with pytest.raises(GraphError):
            erdos_renyi_gnm(4, 10, seed=0)

    def test_complete_graph(self):
        g = erdos_renyi_gnm(5, 10, seed=0)
        assert g.num_edges == 10
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_negative_args(self):
        with pytest.raises(GraphError):
            erdos_renyi_gnm(-1, 0)


class TestPowerlawConfiguration:
    def test_mean_degree_near_target(self):
        g = powerlaw_configuration(500, target_avg_degree=8.0, seed=2)
        assert 4.0 < g.average_degree < 10.0

    def test_skewness_positive(self):
        g = powerlaw_configuration(500, target_avg_degree=6.0, exponent=1.9, seed=2)
        assert degree_skewness(g) > 1.0

    def test_deterministic(self):
        a = powerlaw_configuration(100, 5.0, seed=9)
        b = powerlaw_configuration(100, 5.0, seed=9)
        assert np.array_equal(a.indices, b.indices)

    def test_max_degree_respected_by_sampling(self):
        g = powerlaw_configuration(200, 5.0, seed=4, max_degree=20)
        assert g.max_degree <= 20

    def test_too_small(self):
        with pytest.raises(GraphError):
            powerlaw_configuration(1, 2.0)


class TestPowerlawCluster:
    def test_clustering_high(self):
        g = powerlaw_cluster(300, edges_per_vertex=4, triangle_prob=0.8, seed=3)
        assert global_clustering(g) > 0.05

    def test_triangle_prob_increases_clustering(self):
        low = powerlaw_cluster(300, 4, 0.0, seed=3)
        high = powerlaw_cluster(300, 4, 0.9, seed=3)
        assert global_clustering(high) > global_clustering(low)

    def test_edge_count_lower_bound(self):
        g = powerlaw_cluster(100, 3, 0.5, seed=1)
        assert g.num_edges >= 3 * (100 - 4)

    def test_param_validation(self):
        with pytest.raises(GraphError):
            powerlaw_cluster(10, 0, 0.5)
        with pytest.raises(GraphError):
            powerlaw_cluster(10, 3, 1.5)
        with pytest.raises(GraphError):
            powerlaw_cluster(3, 3, 0.5)

    def test_deterministic(self):
        a = powerlaw_cluster(80, 3, 0.6, seed=12)
        b = powerlaw_cluster(80, 3, 0.6, seed=12)
        assert np.array_equal(a.indices, b.indices)


class TestRegularish:
    def test_low_skew(self):
        g = random_regularish(400, degree=6, seed=5)
        assert abs(degree_skewness(g)) < 1.0

    def test_mean_near_target(self):
        g = random_regularish(400, degree=6, seed=5)
        assert 4.0 < g.average_degree < 7.0


class TestDegreeSorted:
    def test_descending(self):
        g = degree_sorted(powerlaw_configuration(100, 5.0, seed=1))
        degs = list(g.degrees)
        assert all(degs[i] >= degs[i + 1] for i in range(len(degs) - 1))

    def test_name_preserved(self):
        g = powerlaw_configuration(50, 4.0, seed=1, name="abc")
        assert degree_sorted(g).name == "abc"


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=60),
    m=st.integers(min_value=0, max_value=80),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_gnm_always_canonical(n, m, seed):
    """Property: generated graphs always satisfy the CSR invariants."""
    m = min(m, n * (n - 1) // 2)
    g = erdos_renyi_gnm(n, m, seed=seed)
    assert g.num_edges == m
    for v in g.vertices():
        row = g.neighbors(v)
        assert all(row[i] < row[i + 1] for i in range(len(row) - 1))
        assert v not in set(int(x) for x in row)
