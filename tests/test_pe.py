"""Unit tests for PE internals (pipeline, rounds, windows, fetch lines)."""

import pytest

from repro.graph import from_edges
from repro.mining import count_matches
from repro.patterns import benchmark_schedule
from repro.sim import SimConfig, simulate
from repro.sim.accelerator import Accelerator
from repro.core.task import SimTask


def build(graph, code="tc", **cfg):
    accel = Accelerator(graph, benchmark_schedule(code), SimConfig(num_pes=1, **cfg), "shogun")
    return accel, accel.pes[0]


@pytest.fixture()
def star_graph():
    """A hub of degree 40 plus a clique among the first few leaves."""
    edges = [(0, i) for i in range(1, 41)]
    edges += [(i, j) for i in range(1, 6) for j in range(i + 1, 6)]
    return from_edges(edges)


class TestUnits:
    def test_unit_serializes_one_per_cycle(self, tiny_graph):
        _, pe = build(tiny_graph)
        a = pe._enter_unit("decode", 10.0)
        b = pe._enter_unit("decode", 10.0)
        c = pe._enter_unit("decode", 10.5)
        assert (a, b, c) == (10.0, 11.0, 12.0)

    def test_units_independent(self, tiny_graph):
        _, pe = build(tiny_graph)
        pe._enter_unit("decode", 5.0)
        assert pe._enter_unit("spawn", 5.0) == 5.0


class TestSpanHelpers:
    def test_graph_spans_cover_neighbor_lines(self, small_er):
        _, pe = build(small_er, code="4cl")
        root = SimTask(depth=0, vertex=20, embedding=(20,), parent=None, tree=1)
        root.expansion = pe.context.expand((20,))
        spans, count = pe._graph_spans(root)
        first = pe.accel.graph_first_line
        last = pe.accel.graph_last_line
        expected = [
            (first[inp.ref], last[inp.ref])
            for inp in root.expansion.neighbors
            if inp.size
        ]
        assert spans == expected
        assert count == sum(l - f + 1 for f, l in spans)

    def test_intermediate_span_none_without_reuse(self, small_er):
        _, pe = build(small_er, code="4cl")
        root = SimTask(depth=0, vertex=20, embedding=(20,), parent=None, tree=1)
        root.expansion = pe.context.expand((20,))
        # Roots have no ancestor set to reuse.
        assert root.expansion.reused_depth is None
        assert pe._intermediate_span(root) is None

    def test_out_span_matches_line_addrs(self, tiny_graph):
        # The inlined out-span arithmetic in _start_task must agree with
        # the memory system's line_span/line_addrs for any base/size.
        accel, _ = build(tiny_graph)
        memory = accel.memory
        line_bytes = accel.config.cache_line_bytes
        for base in (0, 60, 64, 64 * 100 + 4):
            for num_bytes in (4, 60, 64, 65, 1000):
                first = base // line_bytes
                last = (base + num_bytes - 1) // line_bytes
                assert memory.line_span(base, num_bytes) == (first, last)
                assert memory.line_addrs(base, num_bytes) == list(range(first, last + 1))


class TestRounds:
    def test_large_degree_vertex_completes(self, star_graph):
        """Working sets beyond the SPM share run in multiple rounds (§3.1)."""
        sched = benchmark_schedule("tc")
        expected = count_matches(star_graph, sched)
        tiny_spm = SimConfig(num_pes=1, spm_kb=1, l1_kb=2, l2_kb=32)
        m = simulate(star_graph, sched, policy="shogun", config=tiny_spm)
        assert m.matches == expected

    def test_small_spm_slower(self, star_graph):
        sched = benchmark_schedule("tc")
        fast = simulate(star_graph, sched, policy="shogun", config=SimConfig(num_pes=1, spm_kb=64))
        slow = simulate(star_graph, sched, policy="shogun", config=SimConfig(num_pes=1, spm_kb=1))
        assert slow.cycles >= fast.cycles


class TestIUWindow:
    def test_recent_utilization_rolls(self, small_er):
        accel, pe = build(small_er, code="4cl", monitor_epoch_cycles=64)
        accel.run()
        assert 0.0 <= pe.recent_iu_utilization() <= 1.0

    def test_recent_utilization_initial(self, tiny_graph):
        _, pe = build(tiny_graph)
        assert pe.recent_iu_utilization() == 0.0


class TestAncestorSets:
    def test_sets_aligned_by_feeding_depth(self, small_er):
        _, pe = build(small_er, code="4cl")
        root = SimTask(depth=0, vertex=20, embedding=(20,), parent=None, tree=1)
        root.expansion = pe.context.expand((20,))
        child = SimTask(depth=1, vertex=5, embedding=(20, 5), parent=root, tree=1)
        sets = pe._ancestor_sets(child)
        assert sets[1] is root.expansion.candidates
        assert sets[2] is None
