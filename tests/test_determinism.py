"""Byte-level determinism of RunMetrics across repeat runs and processes.

The golden registry and the persistent result cache both assume a cell's
metrics are a pure function of (graph, schedule, policy, config).  These
tests pin that down: two fresh simulations serialize identically, and the
orchestrator's process pool returns the same bytes as an in-process run.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import runner
from repro.orchestrator import Orchestrator
from repro.orchestrator.cells import CellSpec, cell_key
from repro.sim import SimConfig
from repro.sim.accelerator import simulate
from repro.validate.oracle import ORACLE_POLICIES


def canonical(metrics) -> str:
    return json.dumps(metrics.to_dict(), sort_keys=True)


class TestSerialDeterminism:
    @pytest.mark.parametrize("policy", ORACLE_POLICIES)
    def test_repeat_runs_identical(self, small_er, sched_tc, policy):
        config = SimConfig(num_pes=2)
        first = simulate(small_er, sched_tc, policy=policy, config=config)
        second = simulate(small_er, sched_tc, policy=policy, config=config)
        assert canonical(first) == canonical(second)

    def test_repeat_runs_identical_with_splitting(self, skewed_graph, sched_4cl):
        config = SimConfig(
            num_pes=4, enable_splitting=True, lb_check_interval=200
        )
        first = simulate(skewed_graph, sched_4cl, policy="shogun", config=config)
        second = simulate(skewed_graph, sched_4cl, policy="shogun", config=config)
        assert canonical(first) == canonical(second)

    def test_dict_roundtrip_is_stable(self, small_er, sched_tc):
        from repro.sim.metrics import RunMetrics

        metrics = simulate(
            small_er, sched_tc, policy="shogun", config=SimConfig(num_pes=2)
        )
        clone = RunMetrics.from_dict(metrics.to_dict())
        assert canonical(clone) == canonical(metrics)


class TestPoolDeterminism:
    def test_process_pool_matches_serial(self):
        config = runner.eval_config()
        specs = {}
        for policy in ("shogun", "bfs"):
            spec = CellSpec(
                dataset="wi", pattern="tc", policy=policy,
                scale=0.3, config=config, verify=False,
            )
            specs[cell_key(spec)] = spec

        results, failures = Orchestrator(jobs=2).run_cells(specs)
        assert failures == {}
        assert set(results) == set(specs)
        for key, spec in specs.items():
            serial = runner.simulate_cell(
                spec.dataset, spec.pattern, spec.policy,
                config=spec.config, scale=spec.scale, verify=False,
            )
            assert canonical(results[key]) == canonical(serial), spec.label()
