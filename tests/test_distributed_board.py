"""Property tests for the distributed scheduling board (docs/distributed.md).

:class:`~repro.distributed.board.CellBoard` is a pure state machine
with an injectable clock, so every scheduling claim the chaos suite
relies on is proven here deterministically: locality-aware placement
lands cells where their graph is staged, a straggler loses exactly its
queued cells (never its running ones), heartbeat silence — not pull
traffic — is what keeps a worker alive, death reclaims/retries with
failure domains, results deduplicate first-wins, and a fixed event
order always produces the identical schedule.  A hypothesis random
walk then drives arbitrary interleavings to completion and checks the
global accounting invariants hold at every step.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import CellBoard
from repro.distributed.protocol import BUSY, DEAD, DRAINING, IDLE, SUSPECT
from repro.experiments import eval_config
from repro.orchestrator import CellSpec
from repro.orchestrator.cells import graph_key, group_key

CFG = eval_config()


def _spec(dataset="wi", pattern="tc", scale=0.1) -> CellSpec:
    return CellSpec(dataset, pattern, "shogun", scale, CFG, True)


def make_specs(layout):
    """``{"k00": ("wi", "tc", 0.1), ...}`` -> specs dict with stable keys.

    Key strings are chosen sorted so the board's deterministic ordering
    is easy to predict in the assertions.
    """
    return {key: _spec(*coords) for key, coords in layout.items()}


class Clock:
    """Virtual monotonic clock the board is driven with."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


def board_for(layout, **kwargs):
    clock = kwargs.pop("clock", None) or Clock()
    board = CellBoard(make_specs(layout), clock=clock, **kwargs)
    return board, clock


# Two groups of two cells sharing one graph each — the smallest layout
# where placement, affinity and stealing are all observable.
TWO_GROUPS = {
    "a0": ("wi", "tc", 0.1),
    "a1": ("wi", "tc", 0.1),
    "b0": ("as", "tc", 0.1),
    "b1": ("as", "tc", 0.1),
}


def drain_worker(board, wid, *, ok=True, now=None):
    """Pull-and-complete until the worker gets no more cells."""
    done = []
    while True:
        kind, key = board.pull(wid, now=now)
        if kind != "cell":
            return done, kind
        board.complete(wid, key, ok=ok, now=now)
        done.append(key)


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------

class TestPlacement:
    def test_groups_ordered_largest_first_key_tiebreak(self):
        board, _ = board_for({
            "a0": ("wi", "tc", 0.1),
            "b0": ("as", "tc", 0.1),
            "b1": ("as", "tc", 0.1),
            "b2": ("as", "tc", 0.1),
            "c0": ("mi", "tc", 0.1),
        })
        groups = list(board._unassigned)
        assert groups[0] == ("as", "tc", 0.1)  # largest group first
        assert groups[1:] == [("mi", "tc", 0.1), ("wi", "tc", 0.1)]

    def test_pull_hands_out_whole_group(self):
        # Both groups have two cells; the key tie-break puts "as"
        # (group b*) at the front of the pool.
        board, _ = board_for(TWO_GROUPS)
        w = board.register("w", pid=1)
        kind, key = board.pull(w.worker_id)
        assert kind == "cell" and key == "b0"
        # The sibling cell is queued on this worker, not unassigned.
        assert list(w.queued) == ["b1"]
        assert group_key(board.specs["b0"]) not in board._unassigned
        assert w.state == BUSY
        assert w.staged == {("as", 0.1)}

    def test_staged_affinity_wins_over_front_group(self):
        # Group "as" is larger (front of the pool), but the worker has
        # already staged wi@0.1 — it must be handed the wi group.
        board, _ = board_for({
            "a0": ("wi", "tc", 0.1),
            "b0": ("as", "tc", 0.1),
            "b1": ("as", "tc", 0.1),
        })
        w = board.register("w", pid=1)
        w.staged.add(("wi", 0.1))
        kind, key = board.pull(w.worker_id)
        assert (kind, key) == ("cell", "a0")

    def test_every_cell_runs_where_its_graph_is_staged(self):
        # The acceptance property: at pull time, the puller has the
        # cell's graph in its staged set (placement created it if new).
        board, _ = board_for(TWO_GROUPS)
        workers = [board.register(f"w{i}", pid=i) for i in (1, 2)]
        ran = {}
        progress = True
        while not board.done and progress:
            progress = False
            for w in workers:
                kind, key = board.pull(w.worker_id)
                if kind != "cell":
                    continue
                progress = True
                assert graph_key(board.specs[key]) in w.staged
                ran[key] = w.worker_id
                board.complete(w.worker_id, key, ok=True)
        assert board.done and set(ran) == set(TWO_GROUPS)
        # Two workers, two groups: locality split one group per worker.
        assert ran["a0"] == ran["a1"] and ran["b0"] == ran["b1"]
        assert ran["a0"] != ran["b0"]

    def test_all_resolved_group_is_skipped(self):
        # Group A (3 cells) is front; B and C (2 each) follow, B first
        # by key.  With B resolved out from under placement, a fresh
        # worker must recurse past it and land on C.
        board, _ = board_for({
            "a0": ("aa", "tc", 0.1), "a1": ("aa", "tc", 0.1),
            "a2": ("aa", "tc", 0.1),
            "b0": ("bb", "tc", 0.1), "b1": ("bb", "tc", 0.1),
            "c0": ("cc", "tc", 0.1), "c1": ("cc", "tc", 0.1),
        })
        w1 = board.register("w1", pid=1)
        kind, key = board.pull(w1.worker_id)
        assert key == "a0"  # w1 owns group A
        board.complete(w1.worker_id, "b0", ok=True)
        board.complete(w1.worker_id, "b1", ok=True)
        w2 = board.register("w2", pid=2)
        kind, key = board.pull(w2.worker_id)
        assert (kind, key) == ("cell", "c0")


# ----------------------------------------------------------------------
# stealing
# ----------------------------------------------------------------------

class TestStealing:
    def test_straggler_loses_exactly_its_queued_cells(self):
        board, _ = board_for({
            "a0": ("wi", "tc", 0.1), "a1": ("wi", "tc", 0.1),
            "a2": ("wi", "tc", 0.1), "a3": ("wi", "tc", 0.1),
        })
        straggler = board.register("slow", pid=1)
        kind, running_key = board.pull(straggler.worker_id)
        assert running_key == "a0"
        queued_before = list(straggler.queued)
        assert queued_before == ["a1", "a2", "a3"]

        thief = board.register("fast", pid=2)
        kind, key = board.pull(thief.worker_id)
        assert (kind, key) == ("cell", "a1")
        # Exactly the queued cells moved; the running cell is untouched.
        assert list(straggler.queued) == []
        assert list(straggler.running) == ["a0"]
        assert list(thief.queued) == ["a2", "a3"]
        assert board.stats["steals"] == 1
        assert board.stats["stolen_cells"] == 3
        # The thief inherits the group's graph identity.
        assert ("wi", 0.1) in thief.staged

    def test_steal_prefers_staged_victim_then_deepest_queue(self):
        board, _ = board_for({
            "a0": ("wi", "tc", 0.1), "a1": ("wi", "tc", 0.1),
            "b0": ("as", "tc", 0.1), "b1": ("as", "tc", 0.1),
            "b2": ("as", "tc", 0.1),
        })
        v1 = board.register("v1", pid=1)  # takes the bigger "as" group
        board.pull(v1.worker_id)
        v2 = board.register("v2", pid=2)  # takes the "wi" group
        board.pull(v2.worker_id)
        assert len(v1.queued) == 2 and len(v2.queued) == 1

        thief = board.register("t", pid=3)
        thief.staged.add(("wi", 0.1))  # affinity with v2's queue head
        kind, key = board.pull(thief.worker_id)
        assert kind == "cell" and key == "a1"  # stole from v2, not deeper v1
        assert len(v2.queued) == 0 and len(v1.queued) == 2

    def test_no_steal_from_dead_or_running_only_workers(self):
        board, _ = board_for({"a0": ("wi", "tc", 0.1)})
        v = board.register("v", pid=1)
        board.pull(v.worker_id)  # running a0, nothing queued
        thief = board.register("t", pid=2)
        kind, _ = board.pull(thief.worker_id)
        assert kind == "wait"
        assert board.stats["steals"] == 0


# ----------------------------------------------------------------------
# liveness
# ----------------------------------------------------------------------

class TestLiveness:
    def test_pull_does_not_refresh_liveness(self):
        board, clock = board_for(TWO_GROUPS, heartbeat_timeout=5.0)
        w = board.register("w", pid=1)
        clock.advance(4.0)
        board.pull(w.worker_id)  # polls, but never heartbeats
        clock.advance(2.0)  # 6s of heartbeat silence total
        reports = board.expire()
        assert [r.worker.worker_id for r in reports] == [w.worker_id]
        assert r.cause == "heartbeat-expired" if (r := reports[0]) else False
        assert w.state == DEAD

    def test_heartbeat_refreshes_and_recovers_suspect(self):
        board, clock = board_for(TWO_GROUPS, heartbeat_timeout=5.0)
        w = board.register("w", pid=1)
        board.pull(w.worker_id)
        clock.advance(3.0)  # past timeout/2
        board.expire()
        assert w.state == SUSPECT
        assert board.heartbeat(w.worker_id) is True
        assert w.state == BUSY  # running a cell
        clock.advance(3.0)
        assert board.expire() == []  # heartbeat reset the silence window

    def test_heartbeat_from_buried_worker_reports_dead(self):
        board, clock = board_for(TWO_GROUPS, heartbeat_timeout=1.0)
        w = board.register("w", pid=1)
        clock.advance(2.0)
        board.expire()
        assert board.heartbeat(w.worker_id) is False
        assert board.heartbeat("w999") is False

    def test_expiry_reclaims_queued_and_retries_running(self):
        board, clock = board_for({
            "a0": ("wi", "tc", 0.1), "a1": ("wi", "tc", 0.1),
            "a2": ("wi", "tc", 0.1),
        }, heartbeat_timeout=1.0)
        w = board.register("w", pid=1)
        board.pull(w.worker_id)  # running a0; a1, a2 queued
        clock.advance(2.0)
        (report,) = board.expire()
        assert report.reclaimed == ["a1", "a2"]
        assert report.retried == ["a0"]
        assert report.failed == []
        assert board.stats["reclaimed"] == 2
        assert board.stats["death_retries"] == 1
        assert board.domains["a0"] == [w.worker_id]
        # A fresh worker gets everything back, retried cell first.
        survivor = board.register("s", pid=2)
        done, _ = drain_worker(board, survivor.worker_id)
        assert done[0] == "a0"
        assert board.done and not board.failures


# ----------------------------------------------------------------------
# death budgets and failure domains
# ----------------------------------------------------------------------

class TestDeaths:
    def test_cell_that_kills_every_host_fails_with_domains(self):
        board, clock = board_for(
            {"a0": ("wi", "tc", 0.1)},
            heartbeat_timeout=1.0, death_retries=1,
        )
        first = board.register("w1", pid=1)
        board.pull(first.worker_id)
        clock.advance(2.0)
        (r1,) = board.expire()
        assert r1.retried == ["a0"]

        second = board.register("w2", pid=2)
        board.pull(second.worker_id)
        clock.advance(2.0)
        (r2,) = board.expire()
        assert r2.failed == ["a0"] and r2.retried == []
        report = board.failures["a0"]
        assert report["type"] == "WorkerLost"
        assert report["domains"] == [first.worker_id, second.worker_id]
        assert board.done

    def test_death_budget_is_separate_from_error_budget(self):
        # One worker death, then one cell error: the error retry budget
        # (retries=1) is still fully available afterwards.
        board, clock = board_for(
            {"a0": ("wi", "tc", 0.1)}, heartbeat_timeout=1.0, retries=1,
        )
        w1 = board.register("w1", pid=1)
        board.pull(w1.worker_id)
        clock.advance(2.0)
        board.expire()  # death retry

        w2 = board.register("w2", pid=2)
        board.pull(w2.worker_id)
        err = {"type": "SimError", "message": "boom", "traceback": ""}
        assert board.complete(w2.worker_id, "a0", ok=False, error=err) == "retry"
        board.pull(w2.worker_id)
        status = board.complete(w2.worker_id, "a0", ok=False, error=err)
        assert status == "failed"
        # The terminal report carries the failure domain of the death.
        assert board.failures["a0"]["domains"] == [w1.worker_id]

    def test_disconnect_mid_sweep_is_a_death(self):
        board, _ = board_for(TWO_GROUPS)
        w = board.register("w", pid=1)
        board.pull(w.worker_id)
        report = board.disconnect(w.worker_id)
        assert report is not None and report.cause == "disconnected"
        assert board.stats["disconnected"] == 1

    def test_disconnect_after_done_is_a_drain(self):
        board, _ = board_for({"a0": ("wi", "tc", 0.1)})
        w = board.register("w", pid=1)
        drain_worker(board, w.worker_id)
        assert board.done
        assert board.disconnect(w.worker_id) is None
        assert w.state == DRAINING
        assert board.describe()[0]["state"] == "drained"
        assert board.stats["disconnected"] == 0

    def test_fail_pending_clears_everything(self):
        board, _ = board_for(TWO_GROUPS)
        w = board.register("w", pid=1)
        board.pull(w.worker_id)
        failed = board.fail_pending(
            {"type": "NoWorkers", "message": "gone", "traceback": ""}
        )
        assert sorted(failed) == sorted(TWO_GROUPS)
        assert board.done
        assert not board._unassigned and not w.queued and not w.running


# ----------------------------------------------------------------------
# first-result-wins deduplication
# ----------------------------------------------------------------------

class TestDedup:
    def test_second_result_is_duplicate(self):
        board, _ = board_for({"a0": ("wi", "tc", 0.1)})
        w = board.register("w", pid=1)
        board.pull(w.worker_id)
        assert board.complete(w.worker_id, "a0", ok=True) == "recorded"
        assert board.complete(w.worker_id, "a0", ok=True) == "duplicate"
        assert board.stats["duplicates"] == 1
        assert w.completed == 1  # the duplicate did not double count

    def test_severed_then_retried_cell_never_double_counts(self):
        # Worker A computes a0 but dies before delivery; B recomputes
        # and delivers; a late delivery from a resurrected A is a
        # duplicate.  This is the sever:result chaos scenario, exactly.
        board, clock = board_for(
            {"a0": ("wi", "tc", 0.1)}, heartbeat_timeout=1.0
        )
        a = board.register("a", pid=1)
        board.pull(a.worker_id)
        board.disconnect(a.worker_id)  # severed pre-delivery -> death
        b = board.register("b", pid=2)
        kind, key = board.pull(b.worker_id)
        assert (kind, key) == ("cell", "a0")  # retried, not lost
        assert board.complete(b.worker_id, "a0", ok=True) == "recorded"
        assert board.complete(a.worker_id, "a0", ok=True) == "duplicate"
        assert board.done and len(board.resolved) == 1

    def test_stale_queued_keys_are_pruned_not_rerun(self):
        board, _ = board_for({
            "a0": ("wi", "tc", 0.1), "a1": ("wi", "tc", 0.1),
        })
        slow = board.register("slow", pid=1)
        board.pull(slow.worker_id)  # running a0, a1 queued
        fast = board.register("fast", pid=2)
        board.pull(fast.worker_id)  # steals a1
        board.complete(fast.worker_id, "a1", ok=True)
        board.complete(slow.worker_id, "a0", ok=True)
        # Neither worker can pull a resolved cell back out.
        assert board.pull(slow.worker_id) == ("drain", None)
        assert board.pull(fast.worker_id) == ("drain", None)

    def test_unknown_key_is_an_error(self):
        board, _ = board_for({"a0": ("wi", "tc", 0.1)})
        w = board.register("w", pid=1)
        with pytest.raises(KeyError):
            board.complete(w.worker_id, "zz", ok=True)


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------

def scripted_run(layout, script):
    """Drive a fresh board with one event script; return the trace."""
    board, clock = board_for(layout, heartbeat_timeout=5.0)
    trace = []
    names = {}
    for event in script:
        op, arg = event
        if op == "register":
            names[arg] = board.register(arg, pid=len(names) + 1).worker_id
        elif op == "pull":
            trace.append((arg, board.pull(names[arg])))
        elif op == "ok":
            wid = names[arg[0]]
            trace.append((arg[0], board.complete(wid, arg[1], ok=True)))
        elif op == "tick":
            clock.advance(arg)
            trace.append(("expire", [r.worker.name for r in board.expire()]))
    trace.append(("stats", dict(board.stats)))
    return trace


class TestDeterminism:
    def test_identical_event_order_identical_schedule(self):
        script = [
            ("register", "w1"), ("register", "w2"),
            ("pull", "w1"), ("pull", "w2"),
            ("ok", ("w1", "a0")), ("pull", "w1"),
            ("tick", 1.0),
            ("ok", ("w2", "b0")), ("pull", "w2"),
            ("ok", ("w1", "a1")), ("ok", ("w2", "b1")),
            ("pull", "w1"), ("pull", "w2"),
        ]
        assert scripted_run(TWO_GROUPS, script) == scripted_run(
            TWO_GROUPS, script
        )


# ----------------------------------------------------------------------
# hypothesis: random walks keep the accounting invariants
# ----------------------------------------------------------------------

LAYOUT = {
    "a0": ("wi", "tc", 0.1), "a1": ("wi", "tc", 0.1),
    "a2": ("wi", "tc", 0.1),
    "b0": ("as", "tc", 0.1), "b1": ("as", "tc", 0.1),
    "c0": ("wi", "tc", 0.2),
}

EVENTS = st.lists(
    st.one_of(
        st.tuples(st.just("pull"), st.integers(0, 2)),
        st.tuples(st.just("finish"), st.integers(0, 2)),
        st.tuples(st.just("fail"), st.integers(0, 2)),
        st.tuples(st.just("beat"), st.integers(0, 2)),
        st.tuples(st.just("kill"), st.integers(0, 2)),
        st.tuples(st.just("tick"), st.floats(0.1, 3.0)),
    ),
    min_size=1, max_size=60,
)


def check_invariants(board):
    keys = set(board.specs)
    assert board.resolved.isdisjoint(board.failures)
    assert board.resolved | set(board.failures) <= keys
    # No unresolved cell is running in two places, and every running
    # cell is either pending or a known stale entry about to dedup.
    running = [k for w in board.workers.values() if w.live for k in w.running]
    assert len(running) == len(set(running))
    # Every pending cell is reachable: unassigned, queued or running on
    # a live worker (nothing leaks out of the schedule).
    reachable = set()
    for queue in board._unassigned.values():
        reachable.update(queue)
    for w in board.workers.values():
        if w.live:
            reachable.update(w.queued)
            reachable.update(w.running)
    assert set(board.pending()) <= reachable


@settings(max_examples=60, deadline=None)
@given(events=EVENTS)
def test_random_walk_converges_and_keeps_invariants(events):
    board, clock = board_for(dict(LAYOUT), heartbeat_timeout=5.0)
    workers = [board.register(f"w{i}", pid=i) for i in (1, 2, 3)]
    for op, arg in events:
        if op == "tick":
            clock.advance(arg)
            board.expire()
        elif op == "beat":
            board.heartbeat(workers[arg].worker_id)
        elif op == "kill":
            board.disconnect(workers[arg].worker_id)
        elif op == "pull":
            board.pull(workers[arg].worker_id)
        else:
            w = workers[arg]
            if w.running:
                key = next(iter(w.running))
                board.complete(w.worker_id, key, ok=(op == "finish"))
        check_invariants(board)
    # A fresh, healthy worker must always be able to finish the sweep.
    closer = board.register("closer", pid=99)
    for _ in range(10 * len(LAYOUT)):
        if board.done:
            break
        kind, key = board.pull(closer.worker_id)
        if kind == "cell":
            board.complete(closer.worker_id, key, ok=True)
        elif kind == "wait":
            # Only stale running cells on dead-but-unexpired workers can
            # hold the sweep open; expire them (keeping the closer's own
            # heartbeat fresh so it survives the jump in virtual time).
            clock.advance(10.0)
            board.heartbeat(closer.worker_id)
            board.expire()
    assert board.done
    assert set(board.resolved) | set(board.failures) == set(LAYOUT)
    check_invariants(board)
