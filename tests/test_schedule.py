"""Unit + property tests for matching schedules and restrictions."""

from itertools import permutations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.patterns import (
    MatchingSchedule,
    Pattern,
    automorphisms,
    clique,
    depth_permutations,
    diamond,
    four_cycle,
    generate_restrictions,
    make_schedule,
    tailed_triangle,
    triangle,
)


class TestRestrictionGeneration:
    def test_triangle_chain(self):
        r = generate_restrictions(triangle(), (0, 1, 2))
        assert r == ((0, 1), (1, 2))  # emb[1]<emb[0], emb[2]<emb[1]

    def test_clique4_transitively_reduced(self):
        r = generate_restrictions(clique(4), (0, 1, 2, 3))
        assert r == ((0, 1), (1, 2), (2, 3))

    def test_tailed_triangle_single(self):
        # Only the swap of the two non-tail triangle vertices survives.
        r = generate_restrictions(tailed_triangle(), (0, 1, 2, 3))
        assert r == ((0, 1),)

    def test_asymmetric_pattern_no_restrictions(self):
        # Asymmetric tree (branches of distinct lengths): |Aut| = 1, so
        # there is nothing to break.
        p = Pattern(7, [(0, 1), (1, 2), (2, 3), (2, 4), (4, 5), (5, 6)])
        assert len(automorphisms(p)) == 1
        assert generate_restrictions(p, (2, 1, 0, 3, 4, 5, 6)) == ()

    def test_pairs_point_upward(self):
        for pattern in (clique(4), diamond(), four_cycle()):
            for order in permutations(range(4)):
                try:
                    r = generate_restrictions(pattern, order)
                except ScheduleError:
                    continue
                assert all(i < j for i, j in r)


class TestDepthPermutations:
    def test_identity_present(self):
        taus = depth_permutations(triangle(), (0, 1, 2))
        assert (0, 1, 2) in taus

    def test_count_equals_group_order(self):
        assert len(depth_permutations(clique(4), (3, 1, 0, 2))) == 24


class TestScheduleValidation:
    def test_not_a_permutation(self):
        with pytest.raises(ScheduleError):
            MatchingSchedule(pattern=triangle(), order=(0, 0, 1))

    def test_disconnected_order(self):
        # Matching the tail (3) right after the opposite corner (0) of tt
        # is invalid: 3 connects only to 2.
        with pytest.raises(ScheduleError):
            MatchingSchedule(pattern=tailed_triangle(), order=(0, 3, 1, 2))

    def test_bad_restriction_pair(self):
        with pytest.raises(ScheduleError):
            MatchingSchedule(pattern=triangle(), order=(0, 1, 2), restrictions=((2, 1),))

    def test_connected_sets(self):
        s = make_schedule(tailed_triangle(), (2, 0, 1, 3))
        assert s.connected[1] == (0,)
        assert s.connected[3] == (0,)  # tail attaches to the first-matched vertex

    def test_disconnected_sets(self):
        s = make_schedule(four_cycle(), (0, 1, 2, 3), induced=True)
        assert s.disconnected[2] == (0,)

    def test_depth_properties(self):
        s = make_schedule(clique(4), (0, 1, 2, 3))
        assert s.depth == 4
        assert s.max_depth == 3

    def test_describe_mentions_mode(self):
        s_e = make_schedule(four_cycle(), (0, 1, 2, 3))
        s_v = make_schedule(four_cycle(), (0, 1, 2, 3), induced=True)
        assert "edge-induced" in s_e.describe()
        assert "vertex-induced" in s_v.describe()


class TestBounds:
    def test_bound_for(self):
        s = make_schedule(clique(3), (0, 1, 2))
        # Restrictions: emb[1]<emb[0], emb[2]<emb[1].
        assert s.bound_for((9,), 1) == 9
        assert s.bound_for((9, 4), 2) == 4

    def test_no_bound(self):
        s = make_schedule(tailed_triangle(), (0, 1, 2, 3))
        assert s.bound_for((9, 4, 6), 3) is None

    def test_min_of_multiple(self):
        s = MatchingSchedule(
            pattern=clique(3),
            order=(0, 1, 2),
            restrictions=((0, 2), (1, 2)),
        )
        assert s.bound_for((5, 9), 2) == 5
        assert s.bound_for((9, 5), 2) == 5


def _restrictions_hold(embedding, restrictions):
    return all(embedding[j] < embedding[i] for i, j in restrictions)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_restrictions_select_exactly_lex_max(data):
    """Property: an embedding satisfies the restrictions iff it is the
    lexicographically largest member of its automorphism orbit — the
    exactness argument behind uniqueness (§2.1)."""
    pattern = data.draw(
        st.sampled_from([triangle(), clique(4), diamond(), four_cycle(), tailed_triangle()])
    )
    k = pattern.num_vertices
    orders = [o for o in permutations(range(k))
              if all(any(pattern.has_edge(o[e], o[d]) for e in range(d)) for d in range(1, k))]
    order = data.draw(st.sampled_from(orders))
    restrictions = generate_restrictions(pattern, order)
    values = data.draw(
        st.lists(st.integers(0, 50), min_size=k, max_size=k, unique=True)
    )
    embedding = tuple(values)
    taus = depth_permutations(pattern, order)
    orbit = [tuple(embedding[t[i]] for i in range(k)) for t in taus]
    is_lex_max = embedding == max(orbit)
    assert _restrictions_hold(embedding, restrictions) == is_lex_max
