"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.graph import save_edge_list


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_count_requires_graph(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["count", "--pattern", "tc"])

    def test_dataset_and_edge_list_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["count", "--dataset", "wi", "--edge-list", "x.txt", "--pattern", "tc"]
            )

    def test_experiment_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])

    def test_all_experiments_resolvable(self):
        import repro.experiments as experiments

        for name in EXPERIMENTS:
            assert callable(getattr(experiments, name))


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Wiki-Vote" in out and "Orkut" in out

    def test_count_dataset(self, capsys):
        assert main(["count", "--dataset", "wi", "--scale", "0.1", "--pattern", "tc"]) == 0
        assert "matches" in capsys.readouterr().out

    def test_count_edge_list(self, tmp_path, capsys, small_er):
        path = tmp_path / "g.txt"
        save_edge_list(small_er, path)
        assert main(["count", "--edge-list", str(path), "--pattern", "tc"]) == 0
        assert "matches" in capsys.readouterr().out

    def test_simulate_multiple_policies(self, capsys):
        assert main(
            ["simulate", "--dataset", "wi", "--scale", "0.1", "--pattern", "tc",
             "--policy", "fingers", "shogun", "--pes", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "speedup vs fingers" in out

    def test_simulate_with_optimizations(self, capsys):
        assert main(
            ["simulate", "--dataset", "wi", "--scale", "0.1", "--pattern", "tc",
             "--policy", "shogun", "--pes", "2", "--splitting", "--merging",
             "--width", "4"]
        ) == 0

    def test_profile(self, tmp_path, capsys):
        out_json = tmp_path / "prof.json"
        assert main(
            ["profile", "--dataset", "wi", "--scale", "0.1", "--pattern", "tc",
             "--top", "5", "--json", str(out_json)]
        ) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out and "instrumented wall" in out
        import json

        payload = json.loads(out_json.read_text())
        assert payload["pattern"] == "tc" and payload["policy"] == "shogun"
        assert len(payload["hotspots"]) == 5
        top = payload["hotspots"][0]
        assert {"function", "file", "line", "ncalls", "tottime_s", "cumtime_s"} <= set(top)
        assert payload["matches"] > 0

    def test_profile_tottime_sort(self, capsys):
        assert main(
            ["profile", "--dataset", "wi", "--scale", "0.1", "--pattern", "tc",
             "--sort", "tottime", "--top", "3"]
        ) == 0
        assert "internal time" in capsys.readouterr().out

    def test_experiment(self, capsys):
        assert main(["experiment", "table3", "--no-cache"]) == 0
        assert "178" in capsys.readouterr().out

    def test_experiment_prints_manifest(self, capsys):
        assert main(["experiment", "table3", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "0 failed" in out

    def test_experiment_parallel_with_cache(self, tmp_path, capsys):
        args = ["experiment", "figure3a", "--scale", "0.12", "--jobs", "2",
                "--cache-dir", str(tmp_path / "cache"), "--quiet"]
        from repro.experiments import clear_run_cache

        clear_run_cache()
        assert main(args) == 0
        first = capsys.readouterr().out
        clear_run_cache()
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 computed" in second and "0 failed" in second  # warm cache
        # Identical figure rows across cold parallel and warm cached runs
        # (everything above the manifest block).
        assert first.split("cells:")[0] == second.split("cells:")[0]

    def test_experiment_scale_from_environment(self, monkeypatch, capsys):
        # REPRO_SCALE set after import must reach the orchestrator path.
        monkeypatch.setenv("REPRO_SCALE", "0.12")
        assert main(["experiment", "table4", "--no-cache"]) == 0
        out_small = capsys.readouterr().out
        monkeypatch.delenv("REPRO_SCALE")
        assert main(["experiment", "table4", "--no-cache"]) == 0
        out_full = capsys.readouterr().out
        assert out_small != out_full


class TestCacheCommands:
    def test_info_empty(self, tmp_path, capsys):
        assert main(["cache", "info", "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "entries:    0" in out

    def test_populate_then_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "c")
        assert main(["experiment", "figure3a", "--scale", "0.12",
                     "--cache-dir", cache_dir, "--quiet"]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        assert "entries:    8" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 8" in capsys.readouterr().out
        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        assert "entries:    0" in capsys.readouterr().out


class TestValidateCLI:
    def test_validate_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["validate"])

    def test_fuzz_defaults(self):
        args = build_parser().parse_args(["validate", "fuzz"])
        assert args.runs == 20 and args.seed == 0 and args.replay is None

    def test_invariants(self, capsys):
        assert main(["validate", "invariants", "--scale", "0.1",
                     "--datasets", "wi", "--patterns", "tc"]) == 0
        out = capsys.readouterr().out
        assert "all invariants hold" in out
        assert "validate invariants: PASS" in out

    def test_oracle(self, capsys):
        assert main(["validate", "oracle", "--scale", "0.1", "--no-cache",
                     "--datasets", "wi", "--patterns", "tc"]) == 0
        out = capsys.readouterr().out
        assert "oracle wi@0.1" in out
        assert "validate oracle: PASS" in out

    def test_fuzz_burst(self, tmp_path, capsys):
        assert main(["validate", "fuzz", "--runs", "1", "--seed", "7",
                     "--out", str(tmp_path)]) == 0
        assert "all passed" in capsys.readouterr().out
        assert not list(tmp_path.iterdir())

    def test_golden_update_then_check(self, tmp_path, capsys):
        golden_dir = str(tmp_path / "golden")
        assert main(["validate", "golden", "--update", "--no-cache",
                     "--dir", golden_dir, "--scale", "0.1"]) == 0
        assert "10 created" in capsys.readouterr().out
        assert main(["validate", "golden", "--no-cache",
                     "--dir", golden_dir, "--scale", "0.1"]) == 0
        assert "10 ok" in capsys.readouterr().out

    def test_golden_missing_fails(self, tmp_path, capsys):
        assert main(["validate", "golden", "--no-cache",
                     "--dir", str(tmp_path / "empty"), "--scale", "0.1"]) == 1
        assert "missing" in capsys.readouterr().out

    def test_fuzz_replay(self, tmp_path, capsys):
        from repro.validate.fuzz import make_case, run_case, write_bundle

        case = make_case(7, 0)
        bundle = write_bundle(tmp_path, case, run_case(case))
        assert main(["validate", "fuzz", "--replay", str(bundle)]) == 0
        assert "all" not in capsys.readouterr().err
