"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.graph import save_edge_list


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_count_requires_graph(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["count", "--pattern", "tc"])

    def test_dataset_and_edge_list_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["count", "--dataset", "wi", "--edge-list", "x.txt", "--pattern", "tc"]
            )

    def test_experiment_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])

    def test_all_experiments_resolvable(self):
        import repro.experiments as experiments

        for name in EXPERIMENTS:
            assert callable(getattr(experiments, name))


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Wiki-Vote" in out and "Orkut" in out

    def test_count_dataset(self, capsys):
        assert main(["count", "--dataset", "wi", "--scale", "0.1", "--pattern", "tc"]) == 0
        assert "matches" in capsys.readouterr().out

    def test_count_edge_list(self, tmp_path, capsys, small_er):
        path = tmp_path / "g.txt"
        save_edge_list(small_er, path)
        assert main(["count", "--edge-list", str(path), "--pattern", "tc"]) == 0
        assert "matches" in capsys.readouterr().out

    def test_simulate_multiple_policies(self, capsys):
        assert main(
            ["simulate", "--dataset", "wi", "--scale", "0.1", "--pattern", "tc",
             "--policy", "fingers", "shogun", "--pes", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "speedup vs fingers" in out

    def test_simulate_with_optimizations(self, capsys):
        assert main(
            ["simulate", "--dataset", "wi", "--scale", "0.1", "--pattern", "tc",
             "--policy", "shogun", "--pes", "2", "--splitting", "--merging",
             "--width", "4"]
        ) == 0

    def test_experiment(self, capsys):
        assert main(["experiment", "table3"]) == 0
        assert "178" in capsys.readouterr().out
