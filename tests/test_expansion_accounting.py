"""Unit tests for expansion op traces and mining statistics accounting."""

import pytest

from repro.graph import from_edges
from repro.mining import SearchContext, mine
from repro.mining.engine import ELEMENTS_PER_LINE, lines_for
from repro.mining.tree import SetOp, SetOpInput
from repro.patterns import benchmark_schedule, make_schedule, tailed_triangle


class TestLinesFor:
    def test_zero(self):
        assert lines_for(0) == 0

    def test_partial_line(self):
        assert lines_for(1) == 1
        assert lines_for(ELEMENTS_PER_LINE) == 1

    def test_rounds_up(self):
        assert lines_for(ELEMENTS_PER_LINE + 1) == 2

    def test_custom_line_size(self):
        assert lines_for(10, elements_per_line=4) == 3


class TestSetOpAccounting:
    def test_comparisons_sum_inputs(self):
        op = SetOp(
            "intersect",
            SetOpInput("intermediate", 1, 10),
            SetOpInput("neighbors", 5, 7),
            output_size=3,
        )
        assert op.comparisons == 17

    def test_fetch_single_input(self):
        op = SetOp("fetch", SetOpInput("neighbors", 5, 7), None, output_size=7)
        assert op.comparisons == 7

    def test_expansion_classifies_inputs(self, small_er):
        ctx = SearchContext(small_er, benchmark_schedule("4cl"))
        exp = ctx.expand((20, 5))
        kinds = {inp.kind for op in exp.ops for inp in (op.left, op.right) if inp}
        assert "intermediate" in kinds or "neighbors" in kinds
        # 'spm' partial results never leak into the intermediate list.
        assert all(inp.kind == "intermediate" for inp in exp.intermediate_inputs)
        assert all(inp.kind == "neighbors" for inp in exp.neighbor_inputs)


class TestReuseWithNoResidual:
    def test_pure_reuse_emits_fetch(self, small_er):
        """tt order (2,0,1,3): the depth-3 formula equals the depth-1 set,
        so depth-2 tasks just re-read it (a fetch op, no merge work)."""
        schedule = make_schedule(tailed_triangle(), (2, 0, 1, 3))
        ctx = SearchContext(small_er, schedule)
        root = 0
        exp1 = ctx.expand((root,))
        kids1 = ctx.children((root,), exp1.candidates)
        if not len(kids1):
            pytest.skip("root 0 has no children under this schedule")
        v1 = kids1[0]
        exp2 = ctx.expand((root, v1), [None, exp1.candidates, None, None])
        kids2 = ctx.children((root, v1), exp2.candidates)
        if not len(kids2):
            pytest.skip("no depth-2 task to exercise")
        exp3 = ctx.expand((root, v1, kids2[0]), [None, exp1.candidates, exp2.candidates, None])
        assert exp3.reused_depth == 1
        assert [op.op for op in exp3.ops] == ["fetch"]
        assert list(exp3.candidates) == list(exp1.candidates)


class TestMiningStatsInternals:
    def test_intermediate_elements_tracked(self, small_er):
        stats = mine(small_er, benchmark_schedule("4cl")).stats
        assert stats.intermediate_input_elements >= stats.intermediate_input_lines

    def test_materialized_elements(self, small_er):
        stats = mine(small_er, benchmark_schedule("tc")).stats
        assert stats.materialized_elements > 0

    def test_avg_lines_zero_when_no_expansions(self):
        g = from_edges([], num_vertices=4)
        stats = mine(g, benchmark_schedule("tc")).stats
        # Roots expand (producing empty sets); matches stay zero.
        assert stats.match_count == 0
        assert stats.avg_intermediate_lines_per_task == 0.0
