"""Unit tests for system-scheduler root dispatch and run-loop plumbing."""

import pytest

from repro.errors import SimulationError
from repro.graph import erdos_renyi_gnm
from repro.mining import count_matches
from repro.patterns import benchmark_schedule
from repro.sim import SimConfig
from repro.sim.accelerator import Accelerator


class TestRootDispatch:
    def test_static_deals_round_robin(self, small_er, sched_tc):
        accel = Accelerator(small_er, sched_tc, SimConfig(num_pes=3, root_dispatch="static"), "shogun")
        assert len(accel._roots) == 0
        sizes = [len(q) for q in accel._pe_roots]
        assert sum(sizes) == small_er.num_vertices
        assert max(sizes) - min(sizes) <= 1
        assert list(accel._pe_roots[0])[:2] == [0, 3]

    def test_dynamic_single_queue(self, small_er, sched_tc):
        accel = Accelerator(small_er, sched_tc, SimConfig(num_pes=3, root_dispatch="dynamic"), "shogun")
        assert len(accel._roots) == small_er.num_vertices
        assert all(len(q) == 0 for q in accel._pe_roots)

    def test_roots_remaining(self, small_er, sched_tc):
        for mode in ("static", "dynamic"):
            accel = Accelerator(small_er, sched_tc, SimConfig(num_pes=3, root_dispatch=mode), "shogun")
            assert accel.roots_remaining() == small_er.num_vertices

    def test_both_modes_same_counts(self, small_er, sched_4cl):
        expected = count_matches(small_er, sched_4cl)
        for mode in ("static", "dynamic"):
            accel = Accelerator(small_er, sched_4cl, SimConfig(num_pes=3, root_dispatch=mode), "shogun")
            assert accel.run().matches == expected


class TestRunLoop:
    def test_tree_ids_unique(self, small_er, sched_tc):
        accel = Accelerator(small_er, sched_tc, SimConfig(num_pes=2), "shogun")
        ids = [accel.next_tree_id() for _ in range(5)]
        assert len(set(ids)) == 5

    def test_footprint_underflow_detected(self, small_er, sched_tc):
        accel = Accelerator(small_er, sched_tc, SimConfig(num_pes=1), "shogun")
        with pytest.raises(SimulationError):
            accel.footprint_remove(100)

    def test_footprint_peak(self, small_er, sched_tc):
        accel = Accelerator(small_er, sched_tc, SimConfig(num_pes=1), "shogun")
        accel.footprint_add(100)
        accel.footprint_add(50)
        accel.footprint_remove(150)
        assert accel.peak_footprint == 150

    def test_run_twice_rejected_implicitly(self, small_er, sched_tc):
        # A second run on a finished accelerator is a no-op returning the
        # same finish state (all work gone).
        accel = Accelerator(small_er, sched_tc, SimConfig(num_pes=1), "shogun")
        first = accel.run()
        second = accel.run()
        assert second.cycles == first.cycles

    def test_max_cycles_guard(self, small_er, sched_4cl):
        cfg = SimConfig(num_pes=1, max_cycles=10)
        accel = Accelerator(small_er, sched_4cl, cfg, "shogun")
        with pytest.raises(SimulationError):
            accel.run()

    def test_lb_check_stops_after_finish(self, small_er, sched_tc):
        cfg = SimConfig(num_pes=2, enable_splitting=True, lb_check_interval=10)
        accel = Accelerator(small_er, sched_tc, cfg, "shogun")
        metrics = accel.run()
        assert metrics.matches == count_matches(small_er, sched_tc)
        assert accel.engine.pending() <= 1  # at most the final LB poll


class TestVerification:
    def test_runner_detects_wrong_count(self, monkeypatch):
        from repro.experiments import runner

        runner.clear_run_cache()
        key = ("wi", "tc", 0.1)
        monkeypatch.setitem(runner._GRAPH_COUNTS, key, 10**9)
        with pytest.raises(SimulationError):
            runner.run_cell("wi", "tc", "shogun", scale=0.1)
        runner.clear_run_cache()

    def test_runner_verify_disabled(self, monkeypatch):
        from repro.experiments import runner

        runner.clear_run_cache()
        key = ("wi", "tc", 0.1)
        monkeypatch.setitem(runner._GRAPH_COUNTS, key, 10**9)
        metrics = runner.run_cell("wi", "tc", "shogun", scale=0.1, verify=False)
        assert metrics.matches < 10**9
        runner.clear_run_cache()
