"""Unit tests for the DRAM, NoC and IU-pool resource models."""

import pytest

from repro.errors import ConfigError
from repro.sim import DRAMModel, IUPool, NoC


class TestDRAM:
    def test_single_request_latency(self):
        dram = DRAMModel(channels=2, latency_cycles=100, service_cycles=4)
        assert dram.request(0, ready_time=10.0) == pytest.approx(110.0)

    def test_same_channel_serializes(self):
        dram = DRAMModel(channels=2, latency_cycles=100, service_cycles=4)
        first = dram.request(0, 0.0)
        second = dram.request(2, 0.0)  # line 2 -> channel 0 as well
        assert second == first + 4

    def test_different_channels_parallel(self):
        dram = DRAMModel(channels=2, latency_cycles=100, service_cycles=4)
        a = dram.request(0, 0.0)
        b = dram.request(1, 0.0)
        assert a == b == pytest.approx(100.0)

    def test_channel_mapping(self):
        dram = DRAMModel(channels=4, latency_cycles=1, service_cycles=1)
        assert dram.channel_of(7) == 3
        assert dram.channel_of(8) == 0

    def test_utilization(self):
        dram = DRAMModel(channels=2, latency_cycles=10, service_cycles=5)
        dram.request(0, 0.0)
        dram.request(1, 0.0)
        assert dram.utilization(10.0) == pytest.approx(0.5)
        assert dram.utilization(0.0) == 0.0

    def test_earliest_free(self):
        dram = DRAMModel(channels=2, latency_cycles=10, service_cycles=5)
        dram.request(0, 0.0)
        assert dram.earliest_free() == 0.0  # channel 1 untouched

    def test_validation(self):
        with pytest.raises(ConfigError):
            DRAMModel(0, 10, 1)
        with pytest.raises(ConfigError):
            DRAMModel(1, 10, 0)


class TestNoC:
    def test_hop(self):
        assert NoC(6).memory_hop() == 6.0

    def test_transfer_latency(self):
        noc = NoC(6, link_line_cycles=1.0)
        assert noc.transfer(10, ready_time=0.0) == pytest.approx(16.0)

    def test_transfers_serialize(self):
        noc = NoC(6)
        first = noc.transfer(10, 0.0)
        second = noc.transfer(10, 0.0)
        assert second == first + 10

    def test_traffic_accounting(self):
        noc = NoC(6)
        noc.transfer(3, 0.0)
        noc.transfer(4, 0.0)
        assert noc.messages == 2
        assert noc.lines_transferred == 7

    def test_zero_line_message(self):
        noc = NoC(6)
        assert noc.transfer(0, 0.0) == pytest.approx(7.0)  # min occupancy 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            NoC(6).transfer(-1, 0.0)


class TestIUPool:
    def test_zero_segments_instant(self):
        pool = IUPool(4, segment_cycles=8, num_dividers=2)
        assert pool.submit(0, 5.0) == 5.0

    def test_parallel_up_to_servers(self):
        pool = IUPool(4, segment_cycles=8, num_dividers=1000)
        done = pool.submit(4, 0.0)
        assert done == pytest.approx(8.0, abs=0.1)

    def test_excess_segments_queue(self):
        pool = IUPool(2, segment_cycles=8, num_dividers=1000)
        done = pool.submit(4, 0.0)
        assert done == pytest.approx(16.0, abs=0.1)

    def test_divider_formation_delay(self):
        pool = IUPool(4, segment_cycles=8, num_dividers=2)
        done = pool.submit(4, 0.0)
        # 4 segments / 2 dividers = 2 cycles formation, then 8 compute.
        assert done == pytest.approx(10.0)

    def test_cross_task_contention(self):
        pool = IUPool(1, segment_cycles=10, num_dividers=1000)
        a = pool.submit(1, 0.0)
        b = pool.submit(1, 0.0)
        assert b == a + 10

    def test_busy_accounting(self):
        pool = IUPool(4, segment_cycles=8, num_dividers=4)
        pool.submit(6, 0.0)
        assert pool.busy_cycles == 48
        assert pool.segments_processed == 6

    def test_utilization_bounds(self):
        pool = IUPool(2, segment_cycles=4, num_dividers=2)
        pool.submit(10, 0.0)
        assert 0.0 < pool.utilization(100.0) <= 1.0
        assert pool.utilization(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            IUPool(0, 4, 2)
        with pytest.raises(ConfigError):
            IUPool(2, 0, 2)
