"""Tests for the parallel experiment orchestrator and its result cache.

Covers the acceptance criteria: identical results serial vs. jobs=2,
100% cache hits on a repeated run, cache invalidation on SimConfig
changes, and worker failures landing in the failure report without
killing the sweep.
"""

import pytest

from repro.experiments import clear_run_cache, eval_config, figure3a
from repro.orchestrator import (
    CellSpec,
    Orchestrator,
    ResultCache,
    attach_persistent_cache,
    cell_key,
    plan_experiment,
)
from repro.orchestrator import scheduler as scheduler_module

SCALE = 0.12
OVERRIDES = {"figure3a": {"widths": (1, 2)}}  # 4 cells, fast


@pytest.fixture(autouse=True)
def _clean_memo():
    clear_run_cache()
    yield
    clear_run_cache()


def _spec(**changes) -> CellSpec:
    base = dict(
        dataset="wi", pattern="tc", policy="shogun",
        scale=SCALE, config=eval_config(), verify=True,
    )
    base.update(changes)
    return CellSpec(**base)


class TestCellKeys:
    def test_stable_for_equal_specs(self):
        assert cell_key(_spec()) == cell_key(_spec())

    def test_config_field_changes_key(self):
        assert cell_key(_spec()) != cell_key(_spec(config=eval_config(l1_kb=4)))

    def test_coordinates_change_key(self):
        assert cell_key(_spec()) != cell_key(_spec(policy="fingers"))
        assert cell_key(_spec()) != cell_key(_spec(scale=SCALE * 2))

    def test_salt_changes_key(self, monkeypatch):
        from repro.orchestrator.cells import code_salt

        base = cell_key(_spec())
        monkeypatch.setenv("REPRO_CACHE_SALT", "different-code-version")
        code_salt.cache_clear()
        try:
            assert cell_key(_spec()) != base
        finally:
            monkeypatch.delenv("REPRO_CACHE_SALT")
            code_salt.cache_clear()


class TestPlanning:
    def test_figure3a_plan(self):
        plan = plan_experiment("figure3a", SCALE, OVERRIDES["figure3a"])
        assert len(plan) == 4  # 2 widths x 2 policies
        assert all(isinstance(s, CellSpec) for s in plan.values())

    def test_direct_experiments_plan_empty(self):
        assert plan_experiment("table3", SCALE) == {}

    def test_planning_does_not_pollute_memo(self):
        from repro.experiments.runner import _RUNS

        plan_experiment("figure3a", SCALE, OVERRIDES["figure3a"])
        assert not _RUNS

    def test_figures_9_and_10_deduplicate(self):
        grid = {"grid": [("wi", "tc")]}
        nine = plan_experiment("figure9", SCALE, grid)
        ten = plan_experiment("figure10", SCALE, grid)
        assert set(ten) <= set(nine)  # figure10's shogun runs are a subset


class TestParallelEquivalence:
    def test_jobs2_matches_serial_render(self, tmp_path):
        serial = figure3a(widths=(1, 2), scale=SCALE).render()
        clear_run_cache()
        orch = Orchestrator(jobs=2, cache=ResultCache(tmp_path / "cache"))
        run = orch.run_experiments(["figure3a"], scale=SCALE, overrides=OVERRIDES)
        assert run.ok
        assert run.rendered["figure3a"] == serial

    def test_pool_unavailable_falls_back_in_process(self, tmp_path, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(scheduler_module, "ProcessPoolExecutor", broken_pool)
        serial = figure3a(widths=(1, 2), scale=SCALE).render()
        clear_run_cache()
        orch = Orchestrator(jobs=2, cache=ResultCache(tmp_path / "cache"))
        run = orch.run_experiments(["figure3a"], scale=SCALE, overrides=OVERRIDES)
        assert run.ok
        assert run.rendered["figure3a"] == serial


class TestPersistentCache:
    def test_second_run_all_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = Orchestrator(jobs=1, cache=cache).run_experiments(
            ["figure3a"], scale=SCALE, overrides=OVERRIDES
        )
        assert first.manifest.computed == first.manifest.total == 4
        clear_run_cache()
        second = Orchestrator(jobs=1, cache=cache).run_experiments(
            ["figure3a"], scale=SCALE, overrides=OVERRIDES
        )
        assert second.manifest.cached == second.manifest.total == 4
        assert second.manifest.computed == 0
        assert second.rendered["figure3a"] == first.rendered["figure3a"]

    def test_config_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        orch = Orchestrator(cache=cache)
        spec_a = _spec()
        key_a = cell_key(spec_a)
        orch.run_cells({key_a: spec_a})
        spec_b = _spec(config=eval_config(l1_kb=4))
        key_b = cell_key(spec_b)
        assert key_b != key_a
        results, failures = orch.run_cells({key_b: spec_b})
        assert not failures
        assert cache.info().entries == 2  # recomputed, not replayed

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = _spec()
        key = cell_key(spec)
        Orchestrator(cache=cache).run_cells({key: spec})
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()  # corrupt file removed

    def test_info_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = _spec()
        Orchestrator(cache=cache).run_cells({cell_key(spec): spec})
        info = cache.info()
        assert info.entries == 1 and info.bytes > 0
        assert cache.clear() == 1
        assert cache.info().entries == 0

    def test_attach_persistent_cache_replays(self, tmp_path, monkeypatch):
        import repro.experiments.runner as runner
        from repro.experiments import run_cell

        calls = {"n": 0}
        real = runner.simulate_cell

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(runner, "simulate_cell", counting)
        cache = ResultCache(tmp_path / "cache")
        detach = attach_persistent_cache(cache)
        try:
            first = run_cell("wi", "tc", "shogun", scale=SCALE)
            assert calls["n"] == 1
        finally:
            detach()
        clear_run_cache()  # simulate a fresh process
        detach = attach_persistent_cache(cache)
        try:
            second = run_cell("wi", "tc", "shogun", scale=SCALE)
        finally:
            detach()
        assert calls["n"] == 1  # served from disk, not resimulated
        assert second == first


class TestFailureHandling:
    def test_worker_failure_reported_not_fatal(self, tmp_path):
        good = _spec()
        bad = _spec(policy="no-such-policy")
        specs = {cell_key(good): good, cell_key(bad): bad}
        orch = Orchestrator(jobs=2, cache=ResultCache(tmp_path / "cache"), retries=0)
        from repro.orchestrator import RunManifest

        manifest = RunManifest(jobs=2)
        results, failures = orch.run_cells(specs, manifest)
        assert cell_key(good) in results
        assert cell_key(bad) in failures
        assert failures[cell_key(bad)]["type"] == "SimulationError"
        assert manifest.failed == 1 and manifest.computed == 1
        # The failure report carries the execution context: worker pid
        # and how the dataset was materialized.
        [failed] = manifest.failures()
        assert isinstance(failed.worker["pid"], int)
        assert failed.worker["dataset_source"] in (
            "arena", "memo", "binary-cache", "rebuilt"
        )
        assert failed.worker["graph_seconds"] >= 0
        rendered = manifest.render()
        assert "FAILED" in rendered
        assert f"pid {failed.worker['pid']}" in rendered
        assert "staged 1 graph(s)" in rendered  # wi@SCALE, both cells

    def test_retries_are_bounded(self):
        bad = _spec(policy="no-such-policy")
        from repro.orchestrator import RunManifest

        manifest = RunManifest()
        orch = Orchestrator(jobs=1, cache=None, retries=2)
        _, failures = orch.run_cells({cell_key(bad): bad}, manifest)
        assert manifest.failures()[0].attempts == 3  # initial + 2 retries

    def test_experiment_depending_on_failed_cell_is_marked(self, monkeypatch, tmp_path):
        # Sabotage simulate_cell so every parallel-dfs cell fails: the
        # figure needing it must be marked failed, the sweep must finish.
        import repro.experiments.runner as runner

        real = runner.simulate_cell

        def flaky(dataset, pattern, policy, **kwargs):
            if policy == "parallel-dfs":
                raise RuntimeError("injected failure")
            return real(dataset, pattern, policy, **kwargs)

        monkeypatch.setattr(runner, "simulate_cell", flaky)
        orch = Orchestrator(jobs=1, cache=None, retries=0)
        run = orch.run_experiments(
            ["figure3a", "table3"], scale=SCALE, overrides=OVERRIDES
        )
        statuses = {e.name: e.status for e in run.manifest.experiments}
        assert statuses["figure3a"] == "failed"
        assert statuses["table3"] == "ok"  # sweep survived
        assert run.manifest.failed == 2  # both parallel-dfs widths
        assert not run.ok


class TestManifest:
    def test_counts_and_speedup(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run = Orchestrator(jobs=1, cache=cache).run_experiments(
            ["figure3a"], scale=SCALE, overrides=OVERRIDES
        )
        m = run.manifest
        assert m.total == 4 and m.done == 4 and m.failed == 0
        assert m.wall_seconds > 0
        assert m.serial_estimate_seconds > 0
        text = m.render()
        assert "4 total" in text and "0 failed" in text

    def test_manifest_saved_next_to_cache(self, tmp_path):
        import json

        cache = ResultCache(tmp_path / "cache")
        Orchestrator(jobs=1, cache=cache).run_experiments(
            ["table3"], scale=SCALE
        )
        data = json.loads((cache.root / "last-run.json").read_text())
        assert data["totals"]["failed"] == 0
        assert data["experiments"][0]["name"] == "table3"
