"""Unit tests for address tokens and the set-buffer address map."""

import pytest

from repro.core import SetBufferMap, TokenPool
from repro.errors import SimulationError


class TestTokenPool:
    def test_acquire_release_cycle(self):
        pool = TokenPool(2)
        a = pool.acquire()
        b = pool.acquire()
        assert {a, b} == {0, 1}
        assert pool.acquire() is None
        pool.release(a)
        assert pool.acquire() == a

    def test_available_held(self):
        pool = TokenPool(3)
        pool.acquire()
        assert pool.available == 2
        assert pool.held == 1

    def test_double_release_rejected(self):
        pool = TokenPool(2)
        t = pool.acquire()
        pool.release(t)
        with pytest.raises(SimulationError):
            pool.release(t)

    def test_release_never_acquired(self):
        pool = TokenPool(2)
        with pytest.raises(SimulationError):
            pool.release(0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            TokenPool(0)

    def test_grow(self):
        pool = TokenPool(1)
        pool.acquire()
        pool.resize(3)
        assert pool.available == 2

    def test_shrink_drops_free_tokens(self):
        pool = TokenPool(4)
        pool.resize(2)
        assert pool.available == 2
        assert pool.acquire() is not None
        assert pool.acquire() is not None
        assert pool.acquire() is None

    def test_shrink_retires_held_lazily(self):
        pool = TokenPool(3)
        tokens = [pool.acquire() for _ in range(3)]
        pool.resize(1)
        assert pool.available == 0
        for t in tokens:
            pool.release(t)
        # Exactly one unit of capacity survives the shrink.
        assert pool.available == 1
        assert pool.acquire() is not None
        assert pool.acquire() is None

    def test_grow_cancels_pending_shrink(self):
        pool = TokenPool(2)
        a = pool.acquire()
        b = pool.acquire()
        pool.resize(1)   # both held: one marked retired
        pool.resize(2)   # cancel the retirement instead of minting
        pool.release(a)
        pool.release(b)
        assert pool.available == 2

    def test_shrink_to_zero_rejected(self):
        with pytest.raises(SimulationError):
            TokenPool(2).resize(0)


class TestSetBufferMap:
    def test_distinct_addresses(self):
        bm = SetBufferMap(0, max_depth=4, buffers_per_depth=4, buffer_lines=8)
        seen = set()
        for depth in range(5):
            for idx in range(16):
                addr = bm.address(depth, idx)
                assert addr not in seen
                seen.add(addr)

    def test_line_aligned(self):
        bm = SetBufferMap(0, 4, 4, 8, line_bytes=64)
        for depth in range(5):
            assert bm.address(depth, 0) % 64 == 0

    def test_pe_regions_disjoint(self):
        a = SetBufferMap(0, 4, 4, 8)
        b = SetBufferMap(1, 4, 4, 8)
        addrs_a = {a.address(d, i) for d in range(5) for i in range(8)}
        addrs_b = {b.address(d, i) for d in range(5) for i in range(8)}
        assert addrs_a.isdisjoint(addrs_b)

    def test_bad_depth(self):
        bm = SetBufferMap(0, 2, 4, 8)
        with pytest.raises(SimulationError):
            bm.address(3, 0)
        with pytest.raises(SimulationError):
            bm.address(-1, 0)

    def test_bad_index(self):
        bm = SetBufferMap(0, 2, 4, 8)
        with pytest.raises(SimulationError):
            bm.address(0, -1)

    def test_lines_for_bytes(self):
        bm = SetBufferMap(0, 2, 4, 8)
        assert bm.lines_for_bytes(0) == 0
        assert bm.lines_for_bytes(1) == 1
        assert bm.lines_for_bytes(64) == 1
        assert bm.lines_for_bytes(65) == 2

    def test_buffer_reuse_same_address(self):
        bm = SetBufferMap(0, 2, 4, 8)
        assert bm.address(1, 2) == bm.address(1, 2)
