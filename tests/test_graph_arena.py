"""Tests for dataset staging: binary graph store + shared-memory arena.

Covers the acceptance criteria of the staging work: store round-trips
are bit-identical, content keys react to the source salt, arena
attachment yields the same CSR arrays and byte-identical RunMetrics,
the full golden grid matches through the jobs=2 arena path, and no
``/dev/shm`` segment survives the scheduler — on success or when a
worker dies mid-cell.
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro.experiments import clear_run_cache, eval_config
from repro.experiments.runner import simulate_cell
from repro.graph import arena as arena_module
from repro.graph import datasets
from repro.graph.arena import (
    ArenaHandle,
    GraphArena,
    GraphStore,
    arena_enabled,
    count_salt,
    dataset_graph_key,
    graph_salt,
    resolve_graph,
    store_enabled,
)
from repro.graph.datasets import load_dataset, load_dataset_with_source
from repro.orchestrator import CellSpec, Orchestrator, RunManifest, cell_key
from repro.orchestrator import scheduler as scheduler_module
from repro.validate.golden import (
    diff_values,
    golden_matrix,
    load_snapshot,
    snapshot_path,
)

SCALE = 0.12

needs_shm = pytest.mark.skipif(
    not GraphArena.available(), reason="no usable shared memory here"
)


def _leaked_segments():
    return glob.glob("/dev/shm/repro-arena-*")


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Every test gets a private cache root and clean process memos."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_run_cache()
    datasets.clear_cache()
    arena_module._reset_local()
    yield
    clear_run_cache()
    datasets.clear_cache()
    arena_module._reset_local()


class TestGraphStore:
    def test_round_trip_bit_identical(self):
        graph = load_dataset("wi", scale=SCALE)
        store = GraphStore()
        store.put("wi", SCALE, graph)
        loaded = store.get("wi", SCALE)
        assert loaded is not None
        assert np.array_equal(loaded.indptr, graph.indptr)
        assert np.array_equal(loaded.indices, graph.indices)
        assert loaded.name == "wi"

    def test_load_dataset_sources(self):
        first, source = load_dataset_with_source("wi", scale=SCALE)
        assert source == "rebuilt"
        second, source = load_dataset_with_source("wi", scale=SCALE)
        assert source == "memo" and second is first
        datasets.clear_cache()
        third, source = load_dataset_with_source("wi", scale=SCALE)
        assert source == "binary-cache"
        assert np.array_equal(third.indptr, first.indptr)
        assert np.array_equal(third.indices, first.indices)

    def test_content_key_reacts_to_salt(self, monkeypatch):
        base = dataset_graph_key("wi", SCALE)
        assert base == dataset_graph_key("wi", SCALE)
        assert base != dataset_graph_key("wi", SCALE * 2)
        assert base != dataset_graph_key("as", SCALE)
        monkeypatch.setenv("REPRO_CACHE_SALT", "other-code-version")
        graph_salt.cache_clear()
        count_salt.cache_clear()
        try:
            assert dataset_graph_key("wi", SCALE) != base
        finally:
            monkeypatch.delenv("REPRO_CACHE_SALT")
            graph_salt.cache_clear()
            count_salt.cache_clear()

    def test_counts_round_trip_and_salt(self, monkeypatch):
        store = GraphStore()
        assert store.get_count("wi", SCALE, "tc") is None
        store.put_count("wi", SCALE, "tc", 123)
        store.put_count("wi", SCALE, "4cl", 45)  # merges into the sidecar
        assert store.get_count("wi", SCALE, "tc") == 123
        assert store.get_count("wi", SCALE, "4cl") == 45
        monkeypatch.setenv("REPRO_CACHE_SALT", "new-miner")
        graph_salt.cache_clear()
        count_salt.cache_clear()
        try:
            assert store.get_count("wi", SCALE, "tc") is None  # stale = miss
        finally:
            monkeypatch.delenv("REPRO_CACHE_SALT")
            graph_salt.cache_clear()
            count_salt.cache_clear()

    def test_corrupt_entry_is_a_miss(self):
        graph = load_dataset("wi", scale=SCALE)
        store = GraphStore()
        store.put("wi", SCALE, graph)
        path = store.path_for(dataset_graph_key("wi", SCALE))
        path.write_bytes(b"not an npz")
        assert store.get("wi", SCALE) is None
        assert not path.exists()  # corrupt file removed

    def test_info_and_clear(self):
        store = GraphStore()
        store.put("wi", SCALE, load_dataset("wi", scale=SCALE))
        store.put_count("wi", SCALE, "tc", 1)
        info = store.info()
        assert info.graphs == 1 and info.counts == 1 and info.bytes > 0
        assert store.clear() == 2
        assert store.info().graphs == 0

    def test_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_STORE", "0")
        assert not store_enabled()
        _, source = load_dataset_with_source("wi", scale=SCALE)
        assert source == "rebuilt"
        datasets.clear_cache()
        _, source = load_dataset_with_source("wi", scale=SCALE)
        assert source == "rebuilt"  # nothing was stored


@needs_shm
class TestGraphArena:
    def test_stage_attach_identical_csr(self):
        graph = load_dataset("wi", scale=SCALE)
        with GraphArena() as arena:
            handle = arena.stage("wi", SCALE, graph)
            assert arena.stage("wi", SCALE, graph) is handle  # idempotent
            arena_module._reset_local()
            datasets.clear_cache()
            attached, source, _ = resolve_graph("wi", SCALE, handle)
            assert source == "arena"
            assert np.array_equal(attached.indptr, graph.indptr)
            assert np.array_equal(attached.indices, graph.indices)
            assert not attached.indptr.flags.writeable
            assert not attached.indices.flags.writeable
            # load_dataset now resolves to the attached graph.
            assert load_dataset("wi", scale=SCALE) is attached
            arena_module._reset_local()
        assert not _leaked_segments()

    def test_close_is_idempotent_and_cleans_segments(self):
        arena = GraphArena()
        arena.stage("wi", SCALE, load_dataset("wi", scale=SCALE))
        assert _leaked_segments()
        arena.close()
        arena.close()
        assert not _leaked_segments()
        with pytest.raises(RuntimeError):
            arena.stage("wi", SCALE, load_dataset("wi", scale=SCALE))

    def test_arena_metrics_bit_identical(self):
        direct = simulate_cell("wi", "tc", "shogun", scale=SCALE)
        graph = load_dataset("wi", scale=SCALE)
        with GraphArena() as arena:
            handle = arena.stage("wi", SCALE, graph)
            clear_run_cache()
            datasets.clear_cache()
            arena_module._reset_local()
            _, source, _ = resolve_graph("wi", SCALE, handle)
            assert source == "arena"
            staged = simulate_cell("wi", "tc", "shogun", scale=SCALE)
            arena_module._reset_local()
        assert staged.to_dict() == direct.to_dict()

    def test_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARENA", "0")
        assert not arena_enabled()
        assert not GraphArena.available()


class TestOrchestratorStaging:
    def test_staging_recorded_in_manifest(self):
        spec = CellSpec("wi", "tc", "shogun", SCALE, eval_config(), True)
        manifest = RunManifest()
        results, failures = Orchestrator(jobs=1).run_cells(
            {cell_key(spec): spec}, manifest
        )
        assert not failures
        assert len(manifest.staging) == 1
        record = manifest.staging[0]
        assert record["dataset"] == "wi" and record["scale"] == SCALE
        assert record["source"] in ("rebuilt", "binary-cache", "memo")
        [outcome] = manifest.cells
        assert outcome.worker is not None
        assert outcome.worker["pid"] == os.getpid()
        assert "staged 1 graph(s)" in manifest.render()

    @needs_shm
    def test_golden_grid_through_arena(self):
        """The committed golden matrix, byte-identical via jobs=2 + arena."""
        config = eval_config()
        specs = {}
        for dataset, pattern, policy, scale in golden_matrix():
            spec = CellSpec(dataset, pattern, policy, scale, config, True)
            specs[cell_key(spec)] = spec
        manifest = RunManifest(jobs=2)
        results, failures = Orchestrator(jobs=2).run_cells(specs, manifest)
        assert not failures
        assert any("arena" in record for record in manifest.staging)
        sources = {
            outcome.worker["dataset_source"] for outcome in manifest.cells
        }
        assert "arena" in sources
        for dataset, pattern, policy, scale in golden_matrix():
            spec = CellSpec(dataset, pattern, policy, scale, config, True)
            snapshot = load_snapshot(snapshot_path(dataset, pattern, policy, scale))
            metrics = results[cell_key(spec)]
            diffs = diff_values(snapshot["metrics"], metrics.to_dict())
            assert not diffs, f"{spec.label()}: {diffs[:5]}"
        assert not _leaked_segments()

    @needs_shm
    def test_broken_pool_leaves_no_segments(self, monkeypatch):
        monkeypatch.setattr(
            scheduler_module, "_execute_cell_group", _exit_group
        )
        config = eval_config()
        specs = {}
        for pattern in ("tc", "4cl"):  # two groups so the pool engages
            spec = CellSpec("wi", pattern, "shogun", SCALE, config, True)
            specs[cell_key(spec)] = spec
        manifest = RunManifest(jobs=2)
        orch = Orchestrator(jobs=2, retries=0)
        results, failures = orch.run_cells(specs, manifest)
        assert len(failures) == 2
        assert manifest.failed == 2
        assert not _leaked_segments()


def _exit_group(group):  # pool target for the broken-pool test
    os._exit(9)
