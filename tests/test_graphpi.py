"""Unit tests for GraphPi-style schedule generation and selection."""

import pytest

from repro.errors import ScheduleError
from repro.patterns import (
    BENCHMARK_CODES,
    benchmark_schedule,
    benchmark_schedules,
    best_schedule,
    clique,
    estimate_cost,
    four_cycle,
    generate_restrictions,
    tailed_triangle,
    triangle,
    valid_orders,
)


class TestValidOrders:
    def test_clique_all_orders_valid(self):
        assert len(list(valid_orders(clique(4)))) == 24

    def test_tailed_triangle(self):
        orders = list(valid_orders(tailed_triangle()))
        # The tail (3) is either the root or matched after its anchor (2)
        # — it has no other attachment point.
        for order in orders:
            assert order.index(3) == 0 or order.index(3) > order.index(2)

    def test_four_cycle_excludes_diagonal_starts(self):
        orders = set(valid_orders(four_cycle()))
        assert (0, 2, 1, 3) not in orders  # 2 not adjacent to 0
        assert (0, 1, 2, 3) in orders


class TestCostModel:
    def test_positive(self):
        cost = estimate_cost(clique(3), (0, 1, 2), generate_restrictions(clique(3), (0, 1, 2)))
        assert cost > 0

    def test_restrictions_reduce_cost(self):
        order = (0, 1, 2, 3)
        with_r = estimate_cost(clique(4), order, generate_restrictions(clique(4), order))
        without = estimate_cost(clique(4), order, ())
        assert with_r < without

    def test_density_increases_cost(self):
        order = (0, 1, 2)
        sparse = estimate_cost(triangle(), order, (), avg_degree=4.0)
        dense = estimate_cost(triangle(), order, (), avg_degree=40.0)
        assert dense > sparse


class TestBestSchedule:
    def test_returns_valid(self):
        s = best_schedule(tailed_triangle())
        assert s.pattern == tailed_triangle()
        assert sorted(s.order) == [0, 1, 2, 3]

    def test_induced_flag(self):
        assert best_schedule(four_cycle(), induced=True).induced
        assert not best_schedule(four_cycle()).induced

    def test_deterministic(self):
        assert best_schedule(four_cycle()).order == best_schedule(four_cycle()).order


class TestBenchmarkSchedules:
    def test_all_codes(self):
        schedules = benchmark_schedules()
        assert [s.name for s in schedules] == list(BENCHMARK_CODES)

    def test_variants(self):
        assert not benchmark_schedule("tt_e").induced
        assert benchmark_schedule("tt_v").induced
        assert not benchmark_schedule("tc").induced

    def test_cached(self):
        assert benchmark_schedule("4cl") is benchmark_schedule("4cl")

    def test_unknown(self):
        with pytest.raises(ScheduleError):
            benchmark_schedule("tc_v")  # cliques have no induced variant
        with pytest.raises(ScheduleError):
            benchmark_schedule("nope")

    def test_clique_schedules_fully_restricted(self):
        # k-cliques have S_k symmetry: k-1 chained restrictions.
        assert len(benchmark_schedule("4cl").restrictions) == 3
        assert len(benchmark_schedule("5cl").restrictions) == 4
