"""Tests for the golden-metrics registry (repro.validate.golden).

The first test is the pytest integration the registry exists for: every
committed snapshot under ``tests/golden/`` must match a live simulation,
field by field.  The rest exercise the update/diff/missing flows against
a temporary directory so they never touch the committed goldens.
"""

from __future__ import annotations

import json

import pytest

from repro.sim import SimConfig
from repro.validate import check_golden, update_golden
from repro.validate.golden import (
    GOLDEN_SCALE,
    default_golden_dir,
    diff_values,
    golden_matrix,
    snapshot_path,
)

#: Fast settings for the tmp-dir flow tests (committed goldens use the
#: evaluation config at scale 0.3; these only test the machinery).
FAST = dict(scale=0.1, config=SimConfig(num_pes=2))


class TestCommittedGoldens:
    def test_snapshots_exist(self):
        for dataset, pattern, policy, scale in golden_matrix():
            assert snapshot_path(dataset, pattern, policy, scale).exists()

    def test_live_runs_match_snapshots(self):
        report = check_golden(scale=GOLDEN_SCALE)
        assert report.ok, report.render()
        assert all(cell.status == "ok" for cell in report.cells)
        assert len(report.cells) == 10

    def test_default_dir_is_tests_golden(self):
        assert default_golden_dir().name == "golden"
        assert default_golden_dir().parent.name == "tests"


class TestGoldenFlows:
    def test_update_creates_then_check_passes(self, tmp_path):
        created = update_golden(golden_dir=tmp_path, **FAST)
        assert created.ok
        assert all(cell.status == "created" for cell in created.cells)
        checked = check_golden(golden_dir=tmp_path, **FAST)
        assert checked.ok
        assert all(cell.status == "ok" for cell in checked.cells)

    def test_missing_snapshot_reported(self, tmp_path):
        update_golden(golden_dir=tmp_path, **FAST)
        victim = snapshot_path("wi", "tc", "shogun", 0.1, golden_dir=tmp_path)
        victim.unlink()
        report = check_golden(golden_dir=tmp_path, **FAST)
        assert not report.ok
        statuses = {cell.label: cell.status for cell in report.cells}
        assert statuses["wi-tc-shogun@0.1"] == "missing"
        assert sum(1 for s in statuses.values() if s == "ok") == 9

    def test_corrupted_field_yields_readable_diff(self, tmp_path):
        update_golden(golden_dir=tmp_path, **FAST)
        victim = snapshot_path("wi", "tc", "bfs", 0.1, golden_dir=tmp_path)
        payload = json.loads(victim.read_text())
        payload["metrics"]["cycles"] += 1000.0
        victim.write_text(json.dumps(payload, indent=2, sort_keys=True))
        report = check_golden(golden_dir=tmp_path, **FAST)
        assert not report.ok
        bad = next(c for c in report.cells if c.policy == "bfs")
        assert bad.status == "diff"
        assert any("metrics.cycles" in d for d in bad.diffs)
        assert "--update" in report.render()

    def test_update_repairs_drift(self, tmp_path):
        update_golden(golden_dir=tmp_path, **FAST)
        victim = snapshot_path("wi", "4cl", "dfs", 0.1, golden_dir=tmp_path)
        payload = json.loads(victim.read_text())
        payload["metrics"]["matches"] += 5
        victim.write_text(json.dumps(payload, indent=2, sort_keys=True))
        repaired = update_golden(golden_dir=tmp_path, **FAST)
        assert repaired.ok
        statuses = {cell.label: cell.status for cell in repaired.cells}
        assert statuses["wi-4cl-dfs@0.1"] == "updated"
        assert check_golden(golden_dir=tmp_path, **FAST).ok

    def test_config_drift_is_its_own_diff(self, tmp_path):
        update_golden(golden_dir=tmp_path, **FAST)
        report = check_golden(
            golden_dir=tmp_path, scale=0.1, config=SimConfig(num_pes=4)
        )
        assert not report.ok
        diffs = [d for cell in report.cells for d in cell.diffs]
        assert any(d.startswith("config.num_pes") for d in diffs)


class TestDiffValues:
    def test_equal_values_no_diff(self):
        assert diff_values({"a": [1, 2], "b": 3}, {"a": [1, 2], "b": 3}) == []

    def test_scalar_mismatch(self):
        assert diff_values({"a": 1}, {"a": 2}) == ["a: golden 1 != actual 2"]

    def test_missing_and_new_fields(self):
        diffs = diff_values({"gone": 1}, {"new": 2})
        assert any("missing" in d for d in diffs)
        assert any("unexpected new field" in d for d in diffs)

    def test_nested_paths(self):
        diffs = diff_values({"m": {"pe": [{"x": 1}]}}, {"m": {"pe": [{"x": 9}]}})
        assert diffs == ["m.pe[0].x: golden 1 != actual 9"]

    def test_list_length_mismatch(self):
        diffs = diff_values({"v": [1, 2, 3]}, {"v": [1, 2]})
        assert any("length 2 != golden length 3" in d for d in diffs)
