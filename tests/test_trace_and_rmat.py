"""Tests for the trace recorder and the R-MAT generator."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import rmat
from repro.graph.stats import degree_skewness
from repro.mining import count_matches
from repro.patterns import benchmark_schedule
from repro.sim import SimConfig, TraceRecorder
from repro.sim.accelerator import Accelerator
from repro.sim.trace import TaskSpan


def make_trace(spans):
    trace = TraceRecorder()
    trace.spans.extend(spans)
    return trace


def span(pe, start, end, task_id=0, depth=0, vertex=0, tree=0):
    return TaskSpan(pe=pe, task_id=task_id, tree=tree, depth=depth,
                    vertex=vertex, start=start, end=end)


@pytest.fixture()
def traced_run(small_er, sched_tc):
    accel = Accelerator(small_er, sched_tc, SimConfig(num_pes=2), "shogun")
    trace = TraceRecorder.attach(accel)
    metrics = accel.run()
    return trace, metrics


class TestRMAT:
    def test_vertex_count(self):
        assert rmat(6, 4.0, seed=0).num_vertices == 64

    def test_deterministic(self):
        a, b = rmat(7, 4.0, seed=3), rmat(7, 4.0, seed=3)
        assert np.array_equal(a.indices, b.indices)

    def test_seed_matters(self):
        a, b = rmat(7, 4.0, seed=3), rmat(7, 4.0, seed=4)
        assert not np.array_equal(a.indices, b.indices)

    def test_skewed(self):
        g = rmat(9, 8.0, seed=1)
        assert degree_skewness(g) > 1.5

    def test_uniform_quadrants_not_skewed(self):
        g = rmat(9, 8.0, seed=1, a=0.25, b=0.25, c=0.25)
        assert degree_skewness(g) < 1.5

    def test_validation(self):
        with pytest.raises(GraphError):
            rmat(0, 4.0)
        with pytest.raises(GraphError):
            rmat(5, 4.0, a=0.5, b=0.3, c=0.3)

    def test_usable_for_mining(self):
        g = rmat(6, 6.0, seed=2)
        assert count_matches(g, benchmark_schedule("tc")) >= 0


class TestTraceRecorder:
    def test_one_span_per_task(self, traced_run):
        trace, metrics = traced_run
        assert len(trace.spans) == metrics.tasks_executed

    def test_spans_well_formed(self, traced_run):
        trace, metrics = traced_run
        for span in trace.spans:
            assert span.end >= span.start
            assert span.pe in (0, 1)
            assert 0 <= span.depth <= 2

    def test_depth_histogram_matches_matches(self, traced_run):
        trace, metrics = traced_run
        hist = trace.depth_histogram()
        assert hist[2] == metrics.matches

    def test_tracing_does_not_change_timing(self, small_er, sched_tc):
        cfg = SimConfig(num_pes=2)
        plain = Accelerator(small_er, sched_tc, cfg, "shogun").run()
        accel = Accelerator(small_er, sched_tc, cfg, "shogun")
        TraceRecorder.attach(accel)
        traced = accel.run()
        assert traced.cycles == plain.cycles

    def test_concurrency_profile(self, traced_run):
        trace, _ = traced_run
        profile = trace.concurrency_profile(0, step=10.0)
        assert profile and max(profile) >= 1

    def test_mean_duration_by_depth(self, traced_run):
        trace, _ = traced_run
        assert trace.mean_duration() > 0
        assert trace.mean_duration(depth=2) > 0
        assert trace.mean_duration(depth=99) == 0.0

    def test_summary(self, traced_run):
        trace, _ = traced_run
        assert "tasks" in trace.summary()
        assert TraceRecorder().summary() == "trace: empty"

    def test_csv_roundtrip(self, traced_run, tmp_path):
        trace, _ = traced_run
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("pe,")
        assert len(lines) == len(trace.spans) + 1

    def test_csv_creates_parent_directories(self, traced_run, tmp_path):
        trace, _ = traced_run
        path = tmp_path / "out" / "run" / "trace.csv"
        trace.save_csv(path)
        assert path.read_text().startswith("pe,")


class TestConcurrencyProfileEdges:
    def test_rejects_nonpositive_step(self):
        trace = make_trace([span(0, 0.0, 5.0)])
        with pytest.raises(ValueError):
            trace.concurrency_profile(0, step=0)
        with pytest.raises(ValueError):
            trace.concurrency_profile(0, step=-1.0)

    def test_empty_pe_is_empty_profile(self):
        trace = make_trace([span(1, 0.0, 5.0)])
        assert trace.concurrency_profile(0) == []

    def test_non_integer_step(self):
        # Horizon 5 with step 2.5 → exactly two buckets; the span covers both.
        trace = make_trace([span(0, 0.0, 5.0)])
        assert trace.concurrency_profile(0, step=2.5) == [1, 1]
        # Horizon 5 with step 2 → ceil(5/2) = 3 buckets.
        assert trace.concurrency_profile(0, step=2.0) == [1, 1, 1]

    def test_boundary_ending_span_stays_out_of_next_bucket(self):
        # [0, 10) then [10, 20): the first span must not leak into bucket 1.
        trace = make_trace([span(0, 0.0, 10.0), span(0, 10.0, 20.0)])
        assert trace.concurrency_profile(0, step=10.0) == [1, 1]

    def test_zero_duration_span_occupies_its_bucket(self):
        trace = make_trace([span(0, 10.0, 10.0), span(0, 0.0, 20.0)])
        assert trace.concurrency_profile(0, step=10.0) == [1, 2]

    def test_zero_horizon_single_bucket(self):
        # Every span at time zero: horizon 0 still yields one bucket.
        trace = make_trace([span(0, 0.0, 0.0), span(0, 0.0, 0.0)])
        assert trace.concurrency_profile(0, step=10.0) == [2]

    def test_overlapping_spans_stack(self):
        trace = make_trace([span(0, 0.0, 30.0), span(0, 10.0, 20.0)])
        assert trace.concurrency_profile(0, step=10.0) == [1, 2, 1]


class TestCsvLoad:
    def test_roundtrip_preserves_spans(self, traced_run, tmp_path):
        trace, _ = traced_run
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        loaded = TraceRecorder.load_csv(path)
        assert len(loaded.spans) == len(trace.spans)
        for orig, back in zip(trace.spans, loaded.spans):
            assert (back.pe, back.task_id, back.tree, back.depth,
                    back.vertex) == (orig.pe, orig.task_id, orig.tree,
                                     orig.depth, orig.vertex)
            # save_csv emits :.2f, so times round-trip centicycle-rounded.
            assert back.start == float(f"{orig.start:.2f}")
            assert back.end == float(f"{orig.end:.2f}")

    def test_loaded_recorder_analyses_match(self, traced_run, tmp_path):
        trace, metrics = traced_run
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        loaded = TraceRecorder.load_csv(path)
        assert loaded.depth_histogram() == trace.depth_histogram()
        assert loaded.depth_histogram()[2] == metrics.matches

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "pe,task_id,tree,depth,vertex,start,end\n"
            "0,1,0,0,5,0.00,3.50\n"
            "\n"
            "1,2,0,1,6,3.50,7.25\n"
        )
        loaded = TraceRecorder.load_csv(path)
        assert [s.task_id for s in loaded.spans] == [1, 2]
        assert loaded.spans[1].end == 7.25

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("pe,task,depth\n0,1,2\n")
        with pytest.raises(ValueError, match="header"):
            TraceRecorder.load_csv(path)

    def test_rejects_malformed_row(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "pe,task_id,tree,depth,vertex,start,end\n"
            "0,1,0,0\n"
        )
        with pytest.raises(ValueError, match="malformed"):
            TraceRecorder.load_csv(path)
