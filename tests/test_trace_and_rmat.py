"""Tests for the trace recorder and the R-MAT generator."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import rmat
from repro.graph.stats import degree_skewness
from repro.mining import count_matches
from repro.patterns import benchmark_schedule
from repro.sim import SimConfig, TraceRecorder
from repro.sim.accelerator import Accelerator


class TestRMAT:
    def test_vertex_count(self):
        assert rmat(6, 4.0, seed=0).num_vertices == 64

    def test_deterministic(self):
        a, b = rmat(7, 4.0, seed=3), rmat(7, 4.0, seed=3)
        assert np.array_equal(a.indices, b.indices)

    def test_seed_matters(self):
        a, b = rmat(7, 4.0, seed=3), rmat(7, 4.0, seed=4)
        assert not np.array_equal(a.indices, b.indices)

    def test_skewed(self):
        g = rmat(9, 8.0, seed=1)
        assert degree_skewness(g) > 1.5

    def test_uniform_quadrants_not_skewed(self):
        g = rmat(9, 8.0, seed=1, a=0.25, b=0.25, c=0.25)
        assert degree_skewness(g) < 1.5

    def test_validation(self):
        with pytest.raises(GraphError):
            rmat(0, 4.0)
        with pytest.raises(GraphError):
            rmat(5, 4.0, a=0.5, b=0.3, c=0.3)

    def test_usable_for_mining(self):
        g = rmat(6, 6.0, seed=2)
        assert count_matches(g, benchmark_schedule("tc")) >= 0


class TestTraceRecorder:
    @pytest.fixture()
    def traced_run(self, small_er, sched_tc):
        accel = Accelerator(small_er, sched_tc, SimConfig(num_pes=2), "shogun")
        trace = TraceRecorder.attach(accel)
        metrics = accel.run()
        return trace, metrics

    def test_one_span_per_task(self, traced_run):
        trace, metrics = traced_run
        assert len(trace.spans) == metrics.tasks_executed

    def test_spans_well_formed(self, traced_run):
        trace, metrics = traced_run
        for span in trace.spans:
            assert span.end >= span.start
            assert span.pe in (0, 1)
            assert 0 <= span.depth <= 2

    def test_depth_histogram_matches_matches(self, traced_run):
        trace, metrics = traced_run
        hist = trace.depth_histogram()
        assert hist[2] == metrics.matches

    def test_tracing_does_not_change_timing(self, small_er, sched_tc):
        cfg = SimConfig(num_pes=2)
        plain = Accelerator(small_er, sched_tc, cfg, "shogun").run()
        accel = Accelerator(small_er, sched_tc, cfg, "shogun")
        TraceRecorder.attach(accel)
        traced = accel.run()
        assert traced.cycles == plain.cycles

    def test_concurrency_profile(self, traced_run):
        trace, _ = traced_run
        profile = trace.concurrency_profile(0, step=10.0)
        assert profile and max(profile) >= 1

    def test_mean_duration_by_depth(self, traced_run):
        trace, _ = traced_run
        assert trace.mean_duration() > 0
        assert trace.mean_duration(depth=2) > 0
        assert trace.mean_duration(depth=99) == 0.0

    def test_summary(self, traced_run):
        trace, _ = traced_run
        assert "tasks" in trace.summary()
        assert TraceRecorder().summary() == "trace: empty"

    def test_csv_roundtrip(self, traced_run, tmp_path):
        trace, _ = traced_run
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("pe,")
        assert len(lines) == len(trace.spans) + 1

    def test_csv_creates_parent_directories(self, traced_run, tmp_path):
        trace, _ = traced_run
        path = tmp_path / "out" / "run" / "trace.csv"
        trace.save_csv(path)
        assert path.read_text().startswith("pe,")
