"""Unit + integration tests for search-tree merging (§4.2)."""

import pytest

from repro.graph import erdos_renyi_gnm, powerlaw_configuration
from repro.mining import count_matches
from repro.patterns import benchmark_schedule
from repro.sim import SimConfig, simulate
from repro.sim.accelerator import Accelerator


def merged_config(**overrides):
    base = dict(num_pes=2, enable_merging=True, l1_kb=4, l2_kb=64)
    base.update(overrides)
    return SimConfig(**base)


class TestMergeDecision:
    def test_controller_attached_only_when_enabled(self, small_er, sched_4cl):
        on = Accelerator(small_er, sched_4cl, merged_config(), "shogun")
        off = Accelerator(small_er, sched_4cl, SimConfig(num_pes=2), "shogun")
        assert on.pes[0].policy.merger is not None
        assert off.pes[0].policy.merger is None

    def test_can_merge_when_idle(self, small_er, sched_4cl):
        accel = Accelerator(small_er, sched_4cl, merged_config(), "shogun")
        pe = accel.pes[0]
        # Fresh PE: no utilization, no thrashing, no DRAM pressure.
        assert pe.policy.merger.can_merge()

    def test_no_third_tree(self, small_er, sched_4cl):
        accel = Accelerator(small_er, sched_4cl, merged_config(), "shogun")
        pe = accel.pes[0]
        tree = pe.policy.tree
        tree.add_root(0, 1)
        tree.add_root(1, 2)
        assert not pe.policy.merger.can_merge()
        assert not pe.policy.wants_root()

    def test_wants_second_root(self, small_er, sched_4cl):
        accel = Accelerator(small_er, sched_4cl, merged_config(), "shogun")
        pe = accel.pes[0]
        pe.policy.add_root(0)
        assert pe.policy.wants_root()  # merging allows a second tree


class TestQuiesce:
    def test_victim_is_smaller_tree(self, small_er, sched_4cl):
        accel = Accelerator(small_er, sched_4cl, merged_config(), "shogun")
        pe = accel.pes[0]
        tree = pe.policy.tree
        tree.add_root(0, 1)
        tree.add_root(1, 2)
        # Make tree 1 deeper: give it an in-use depth-1 bunch.
        r1 = tree.select(False)
        r1.expansion = pe.context.expand(r1.embedding)
        r1.children_vertices = pe.context.children(r1.embedding, r1.expansion.candidates)
        pe.footprint_add(len(r1.expansion.candidates) * 4)
        tree.on_complete(r1)
        merger = pe.policy.merger
        # Force the thrashing condition by direct call.
        victim = merger._pick_victim(tree.live_tree_ids())
        assert victim == 2  # the shallower tree

    def test_wake_on_completion(self, small_er, sched_4cl):
        accel = Accelerator(small_er, sched_4cl, merged_config(), "shogun")
        pe = accel.pes[0]
        tree = pe.policy.tree
        tree.add_root(0, 1)
        tree.add_root(1, 2)
        tree.quiesce_tree(2)
        pe.policy.merger.on_tree_done(1)
        assert tree.quiesced_tree_ids() == []


class TestEndToEnd:
    @pytest.mark.parametrize("code", ["tc", "4cl", "tt_e", "dia_v"])
    def test_counts_exact_with_merging(self, code):
        graph = powerlaw_configuration(80, 4.0, exponent=2.0, seed=5)
        sched = benchmark_schedule(code)
        expected = count_matches(graph, sched)
        m = simulate(graph, sched, policy="shogun", config=merged_config())
        assert m.matches == expected

    def test_merging_helps_sparse_graph(self):
        # Low-degree graph: single trees cannot fill the PE (the paper's
        # yo/pa case); merging should not hurt and usually helps.
        graph = powerlaw_configuration(150, 3.0, exponent=2.2, seed=9)
        sched = benchmark_schedule("tc")
        plain = simulate(graph, sched, policy="shogun", config=SimConfig(num_pes=2, l1_kb=4, l2_kb=64))
        merged = simulate(graph, sched, policy="shogun", config=merged_config())
        assert merged.matches == plain.matches
        assert merged.cycles <= plain.cycles * 1.05

    def test_merge_counter_reported(self):
        graph = powerlaw_configuration(150, 3.0, exponent=2.2, seed=9)
        sched = benchmark_schedule("tc")
        m = simulate(graph, sched, policy="shogun", config=merged_config())
        assert m.merges >= 0  # counter wired through RunMetrics
