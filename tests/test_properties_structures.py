"""Property-based tests on core data structures (hypothesis)."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SetBufferMap, TokenPool
from repro.sim import Engine


@settings(max_examples=80, deadline=None)
@given(ops=st.lists(st.sampled_from(["acquire", "release", "resize_up", "resize_down"]), max_size=60))
def test_token_pool_state_machine(ops):
    """Model-based: the pool never double-issues, never loses capacity."""
    pool = TokenPool(3)
    held = set()
    target = 3
    for op in ops:
        if op == "acquire":
            token = pool.acquire()
            if token is not None:
                assert token not in held
                held.add(token)
        elif op == "release" and held:
            token = held.pop()
            pool.release(token)
        elif op == "resize_up":
            target += 1
            pool.resize(target)
        elif op == "resize_down" and target > 1:
            target -= 1
            pool.resize(target)
        # Invariants after every step: capacity in circulation (free
        # tokens + held tokens that will return) always equals target.
        assert pool.held == len(held)
        assert pool.available >= 0
        assert pool.available + pool.held - len(pool._retired) == target


@settings(max_examples=60, deadline=None)
@given(
    times=st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), min_size=1, max_size=40)
)
def test_engine_executes_in_time_order(times):
    engine = Engine()
    fired = []
    for t in times:
        engine.at(t, lambda t=t: fired.append(t))
    engine.run()
    assert fired == sorted(times, key=lambda x: x)
    assert len(fired) == len(times)


@settings(max_examples=40, deadline=None)
@given(
    pe_ids=st.lists(st.integers(0, 3), min_size=1, max_size=3, unique=True),
    depths=st.integers(1, 6),
    buffers=st.integers(1, 8),
    lines=st.integers(1, 16),
)
def test_buffer_map_addresses_never_collide(pe_ids, depths, buffers, lines):
    """Buffers of all PEs/depths/indices occupy disjoint byte ranges."""
    maps = [SetBufferMap(pe, depths, buffers, lines) for pe in pe_ids]
    ranges = []
    for bm in maps:
        for depth in range(depths + 1):
            for idx in range(buffers + 2):  # include overflow indices
                base = bm.address(depth, idx)
                ranges.append((base, base + bm.buffer_bytes))
    ranges.sort()
    for (a_start, a_end), (b_start, _) in zip(ranges, ranges[1:]):
        assert a_end <= b_start


@settings(max_examples=40, deadline=None)
@given(jobs=st.lists(st.tuples(st.integers(0, 20), st.floats(0, 100, allow_nan=False)), max_size=30))
def test_iu_pool_conservation(jobs):
    """Busy cycles equal segments x segment_cycles; finishes monotone per submit order."""
    from repro.sim import IUPool

    pool = IUPool(4, segment_cycles=8, num_dividers=4)
    total_segments = 0
    last_ready = 0.0
    for segments, ready in jobs:
        ready = max(ready, last_ready)  # event-driven callers move forward in time
        finish = pool.submit(segments, ready)
        assert finish >= ready
        total_segments += segments
        last_ready = ready
    assert pool.busy_cycles == total_segments * 8
    assert pool.segments_processed == total_segments
