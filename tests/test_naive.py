"""Unit tests for the pattern-oblivious brute-force oracle itself."""

import pytest

from repro.graph import from_edges
from repro.mining import count_injective_maps, count_unique_subgraphs
from repro.patterns import clique, diamond, four_cycle, tailed_triangle, triangle


@pytest.fixture(scope="module")
def k4():
    return from_edges([(u, v) for u in range(4) for v in range(u + 1, 4)])


class TestInjectiveMaps:
    def test_triangle_in_k4(self, k4):
        # 4 triangles x |Aut| = 6 maps each.
        assert count_injective_maps(k4, triangle()) == 24

    def test_four_cycle_in_k4_edge_induced(self, k4):
        # 3 vertex-orderings of C4 on 4 vertices x 8 automorphisms... =
        # every 4-cycle subgraph; K4 contains 3 distinct C4 subgraphs.
        assert count_injective_maps(k4, four_cycle()) == 24

    def test_four_cycle_in_k4_vertex_induced(self, k4):
        # K4's induced 4-vertex subgraph is K4, never C4.
        assert count_injective_maps(k4, four_cycle(), induced=True) == 0

    def test_path_graph(self):
        path = from_edges([(0, 1), (1, 2)])
        assert count_injective_maps(path, triangle()) == 0


class TestUniqueSubgraphs:
    def test_triangles_in_k4(self, k4):
        assert count_unique_subgraphs(k4, triangle()) == 4

    def test_cliques_in_k5(self):
        k5 = from_edges([(u, v) for u in range(5) for v in range(u + 1, 5)])
        assert count_unique_subgraphs(k5, clique(4)) == 5
        assert count_unique_subgraphs(k5, clique(5)) == 1

    def test_diamond_in_k4(self, k4):
        # Every edge choice to delete... K4 contains 6 diamonds (pick the
        # non-adjacent pair = pick 1 of 6 edges missing... actually pick
        # the pair of degree-2 vertices: C(4,2) = 6).
        assert count_unique_subgraphs(k4, diamond()) == 6

    def test_tailed_triangle_in_fig1(self, tiny_graph):
        # Cross-check with the schedule-driven miner result.
        from repro.mining import count_matches
        from repro.patterns import benchmark_schedule

        expected = count_unique_subgraphs(tiny_graph, tailed_triangle())
        assert count_matches(tiny_graph, benchmark_schedule("tt_e")) == expected

    def test_induced_leq_edge_induced(self, small_er):
        for pattern in (tailed_triangle(), diamond(), four_cycle()):
            vi = count_unique_subgraphs(small_er, pattern, induced=True)
            ei = count_unique_subgraphs(small_er, pattern)
            assert vi <= ei
