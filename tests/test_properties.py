"""Property-based end-to-end invariants across the whole stack.

The central invariant (§2.1): *every* scheduling policy must find every
match exactly once, on any graph, for any benchmark schedule.  Hypothesis
generates random small graphs; each draw runs the naive oracle, the
reference miner and a simulated policy, and all three must agree.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import from_edges
from repro.mining import count_matches, count_unique_subgraphs
from repro.patterns import benchmark_schedule, get_pattern
from repro.sim import SimConfig, simulate


def graphs(max_n=18, max_m=40):
    @st.composite
    def build(draw):
        n = draw(st.integers(3, max_n))
        edges = draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=max_m,
            )
        )
        return from_edges(edges, num_vertices=n)

    return build()


def _base(code):
    return code[:-2] if code.endswith(("_e", "_v")) else code


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graph=graphs(), code=st.sampled_from(["tc", "4cl", "tt_e", "dia_v", "4cyc_e"]))
def test_miner_matches_oracle(graph, code):
    sched = benchmark_schedule(code)
    expected = count_unique_subgraphs(graph, get_pattern(_base(code)), induced=sched.induced)
    assert count_matches(graph, sched) == expected


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    graph=graphs(max_n=14, max_m=30),
    code=st.sampled_from(["tc", "4cl", "4cyc_v"]),
    policy=st.sampled_from(["shogun", "fingers", "parallel-dfs"]),
)
def test_simulated_policies_match_oracle(graph, code, policy):
    sched = benchmark_schedule(code)
    expected = count_unique_subgraphs(graph, get_pattern(_base(code)), induced=sched.induced)
    config = SimConfig(num_pes=2, l1_kb=1, l2_kb=16)
    metrics = simulate(graph, sched, policy=policy, config=config)
    assert metrics.matches == expected


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graph=graphs(max_n=14, max_m=30))
def test_shogun_optimizations_preserve_counts(graph):
    """Splitting + merging are performance features: counts never change."""
    sched = benchmark_schedule("4cl")
    base = SimConfig(num_pes=3, l1_kb=1, l2_kb=16)
    fancy = base.replace(enable_splitting=True, enable_merging=True, lb_check_interval=50)
    plain = simulate(graph, sched, policy="shogun", config=base)
    optimized = simulate(graph, sched, policy="shogun", config=fancy)
    assert plain.matches == optimized.matches


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graph=graphs(max_n=16), width=st.integers(1, 6))
def test_width_never_changes_counts(graph, width):
    sched = benchmark_schedule("tc")
    config = SimConfig(
        num_pes=2, execution_width=width, bunch_entries=width, tokens_per_depth=width,
        l1_kb=1, l2_kb=16,
    )
    expected = count_matches(graph, sched)
    assert simulate(graph, sched, policy="shogun", config=config).matches == expected
