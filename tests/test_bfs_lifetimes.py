"""Unit tests for BFS frontier set-lifetime logic.

BFS must keep a frontier's candidate sets alive until the deepest task
depth whose expansion can *reuse* them has executed — releasing too early
would under-count the footprint, too late would overstate the explosion.
"""

import pytest

from repro.graph import erdos_renyi_gnm
from repro.mining import count_matches
from repro.patterns import benchmark_schedule, make_schedule, tailed_triangle
from repro.sim import SimConfig, simulate
from repro.sim.accelerator import Accelerator


def bfs_policy(graph, schedule):
    accel = Accelerator(graph, schedule, SimConfig(num_pes=1), "bfs")
    return accel.pes[0].policy


class TestLastReaderDepth:
    def test_clique_chain(self, small_er):
        """4cl reuses each set only at the immediately following depth."""
        policy = bfs_policy(small_er, benchmark_schedule("4cl"))
        # The set produced by a depth-d task is read by depth d+1 tasks
        # (vertex fetch + expansion reuse) and by nothing deeper.
        assert policy._last_reader_depth(0) == 1
        assert policy._last_reader_depth(1) == 2

    def test_deep_reuse_extends_lifetime(self, small_er):
        """tt with order (2,0,1,3): depth-2 expansions reuse the depth-0 set.

        The candidate set for depth 3 equals the candidate set for depth
        1 (both are N(emb[0])), so depth-2 tasks re-read the set the
        depth-0 task produced — its lifetime extends past depth 1.
        """
        schedule = make_schedule(tailed_triangle(), (2, 0, 1, 3))
        policy = bfs_policy(small_er, schedule)
        assert policy._last_reader_depth(0) == 2

    def test_footprint_returns_to_zero(self, small_er):
        """All sets released by the end of the run (no footprint leak)."""
        accel = Accelerator(
            small_er, benchmark_schedule("4cl"), SimConfig(num_pes=1), "bfs"
        )
        accel.run()
        assert accel._footprint == 0

    @pytest.mark.parametrize("policy", ["bfs", "fingers", "dfs", "parallel-dfs", "shogun"])
    def test_no_policy_leaks_footprint(self, small_er, policy):
        accel = Accelerator(
            small_er, benchmark_schedule("tt_e"), SimConfig(num_pes=2), policy
        )
        accel.run()
        assert accel._footprint == 0


class TestBFSFootprintShape:
    def test_footprint_grows_with_graph(self):
        sched = benchmark_schedule("4cl")
        cfg = SimConfig(num_pes=1)
        small = erdos_renyi_gnm(20, 60, seed=1)
        large = erdos_renyi_gnm(60, 360, seed=1)
        m_small = simulate(small, sched, policy="bfs", config=cfg)
        m_large = simulate(large, sched, policy="bfs", config=cfg)
        assert m_large.peak_footprint_bytes > m_small.peak_footprint_bytes

    def test_counts_with_deep_reuse_schedule(self, small_er):
        schedule = make_schedule(tailed_triangle(), (2, 0, 1, 3))
        expected = count_matches(small_er, schedule)
        m = simulate(small_er, schedule, policy="bfs", config=SimConfig(num_pes=1))
        assert m.matches == expected
