"""Unit tests for the CSR graph representation."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    GRAPH_REGION_BASE,
    VERTEX_BYTES,
    CSRGraph,
    empty_graph,
    from_edges,
    induced_subgraph,
    relabel_by_degree,
)


class TestBasics:
    def test_counts(self, tiny_graph):
        assert tiny_graph.num_vertices == 5
        assert tiny_graph.num_edges == 9

    def test_len(self, tiny_graph):
        assert len(tiny_graph) == 5

    def test_degrees(self, tiny_graph):
        assert tiny_graph.degree(0) == 3
        assert tiny_graph.degree(3) == 4
        assert list(tiny_graph.degrees) == [3, 4, 4, 4, 3]

    def test_max_degree(self, tiny_graph):
        assert tiny_graph.max_degree == 4

    def test_average_degree(self, tiny_graph):
        assert tiny_graph.average_degree == pytest.approx(18 / 5)

    def test_neighbors_sorted(self, tiny_graph):
        for v in tiny_graph.vertices():
            row = tiny_graph.neighbors(v)
            assert list(row) == sorted(set(int(x) for x in row))

    def test_neighbors_content(self, tiny_graph):
        assert list(tiny_graph.neighbors(0)) == [1, 2, 3]
        assert list(tiny_graph.neighbors(4)) == [1, 2, 3]

    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(0, 1)
        assert tiny_graph.has_edge(1, 0)
        assert not tiny_graph.has_edge(0, 4)
        assert not tiny_graph.has_edge(0, 0)

    def test_edges_iteration(self, tiny_graph):
        edges = list(tiny_graph.edges())
        assert len(edges) == tiny_graph.num_edges
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == len(edges)

    def test_to_edge_list_roundtrip(self, tiny_graph):
        rebuilt = from_edges(tiny_graph.to_edge_list(), num_vertices=5)
        assert np.array_equal(rebuilt.indptr, tiny_graph.indptr)
        assert np.array_equal(rebuilt.indices, tiny_graph.indices)


class TestEmptyGraph:
    def test_zero_vertices(self):
        g = empty_graph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.max_degree == 0
        assert g.average_degree == 0.0

    def test_isolated_vertices(self):
        g = empty_graph(5)
        assert g.num_vertices == 5
        assert list(g.neighbors(3)) == []

    def test_negative_raises(self):
        with pytest.raises(GraphError):
            empty_graph(-1)


class TestValidation:
    def test_bad_indptr_start(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([1, 2]), np.array([0, 1]))

    def test_indptr_indices_mismatch(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 3]), np.array([0]))

    def test_decreasing_indptr(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2, 1, 2]), np.array([1, 2]))

    def test_out_of_range_indices(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([0]))

    def test_unsorted_adjacency_rejected(self):
        # Vertex 0 adjacent to 2 then 1 (unsorted).
        with pytest.raises(GraphError):
            CSRGraph(
                np.array([0, 2, 3, 4]),
                np.array([2, 1, 0, 0]),
            )


class TestAddressMap:
    def test_base_region(self, tiny_graph):
        assert tiny_graph.neighbor_set_address(0) == GRAPH_REGION_BASE

    def test_addresses_monotone(self, tiny_graph):
        addrs = [tiny_graph.neighbor_set_address(v) for v in tiny_graph.vertices()]
        assert addrs == sorted(addrs)

    def test_bytes(self, tiny_graph):
        assert tiny_graph.neighbor_set_bytes(3) == 4 * VERTEX_BYTES

    def test_adjacent_regions(self, tiny_graph):
        for v in range(tiny_graph.num_vertices - 1):
            end = tiny_graph.neighbor_set_address(v) + tiny_graph.neighbor_set_bytes(v)
            assert end == tiny_graph.neighbor_set_address(v + 1)


class TestTransforms:
    def test_relabel_by_degree_preserves_structure(self, tiny_graph):
        relabeled = relabel_by_degree(tiny_graph)
        assert relabeled.num_edges == tiny_graph.num_edges
        assert sorted(relabeled.degrees) == sorted(tiny_graph.degrees)

    def test_relabel_descending(self, small_er):
        relabeled = relabel_by_degree(small_er)
        degs = list(relabeled.degrees)
        assert all(degs[i] >= degs[i + 1] for i in range(len(degs) - 1))

    def test_relabel_ascending(self, small_er):
        relabeled = relabel_by_degree(small_er, descending=False)
        degs = list(relabeled.degrees)
        assert all(degs[i] <= degs[i + 1] for i in range(len(degs) - 1))

    def test_induced_subgraph(self, tiny_graph):
        sub = induced_subgraph(tiny_graph, [0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3  # triangle 0-1-2

    def test_induced_subgraph_duplicate_rejected(self, tiny_graph):
        with pytest.raises(GraphError):
            induced_subgraph(tiny_graph, [0, 0, 1])

    def test_subgraph_degrees(self, tiny_graph):
        assert tiny_graph.subgraph_degrees([0, 1, 2]) == [2, 2, 2]

    def test_is_isomorphic_embedding(self, tiny_graph):
        triangle_adj = [[1, 2], [0, 2], [0, 1]]
        assert tiny_graph.is_isomorphic_embedding((0, 1, 2), triangle_adj)
        assert not tiny_graph.is_isomorphic_embedding((0, 1, 4), triangle_adj)
