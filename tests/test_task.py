"""Unit tests for the SimTask model."""

import pytest

from repro.core import SimTask, TaskState


def make_task(depth=0, vertex=0, parent=None, children=None):
    embedding = (parent.embedding + (vertex,)) if parent else (vertex,)
    task = SimTask(depth=depth, vertex=vertex, embedding=embedding, parent=parent, tree=1)
    if children is not None:
        task.children_vertices = list(children)
    return task


class TestChildren:
    def test_unexplored_before_execution(self):
        assert make_task().unexplored == 0

    def test_take_next_child_in_order(self):
        t = make_task(children=[3, 5, 9])
        assert t.take_next_child() == 3
        assert t.take_next_child() == 5
        assert t.unexplored == 1

    def test_take_exhausted_raises(self):
        t = make_task(children=[1])
        t.take_next_child()
        with pytest.raises(IndexError):
            t.take_next_child()


class TestSplitChildren:
    def test_even_split(self):
        t = make_task(children=[1, 2, 3, 4])
        assert t.split_children(2) == [[1, 2], [3, 4]]

    def test_respects_explored_prefix(self):
        t = make_task(children=[1, 2, 3, 4])
        t.take_next_child()
        assert t.split_children(3) == [[2], [3], [4]]

    def test_empty(self):
        t = make_task(children=[])
        assert t.split_children(2) == []

    def test_bad_parts(self):
        with pytest.raises(ValueError):
            make_task(children=[1]).split_children(0)


class TestAncestors:
    def test_walks_to_depth(self):
        root = make_task(depth=0, vertex=9)
        mid = make_task(depth=1, vertex=5, parent=root)
        leaf = make_task(depth=2, vertex=2, parent=mid)
        assert leaf.ancestor_at_depth(0) is root
        assert leaf.ancestor_at_depth(1) is mid
        assert leaf.ancestor_at_depth(2) is leaf

    def test_missing_ancestor(self):
        t = make_task(depth=0)
        with pytest.raises(LookupError):
            t.ancestor_at_depth(1)


class TestIdentity:
    def test_task_ids_unique(self):
        assert make_task().task_id != make_task().task_id

    def test_embedding_extends_parent(self):
        root = make_task(depth=0, vertex=7)
        child = make_task(depth=1, vertex=3, parent=root)
        assert child.embedding == (7, 3)

    def test_default_state_ready(self):
        assert make_task().state == TaskState.READY

    def test_is_root(self):
        root = make_task(depth=0)
        assert root.is_root
        assert not make_task(depth=1, parent=root).is_root
