"""Tests for the fuzz mode and its repro bundles (repro.validate.fuzz)."""

from __future__ import annotations

import json

import numpy as np

import repro.validate.fuzz as fuzz_mod
from repro.validate import run_fuzz
from repro.validate.fuzz import (
    FUZZ_PATTERNS,
    FuzzCase,
    build_config,
    build_graph,
    load_bundle,
    make_case,
    replay_bundle,
    run_case,
    write_bundle,
)
from repro.validate.oracle import OracleReport


class TestCaseGeneration:
    def test_deterministic_in_seed_and_index(self):
        assert make_case(3, 5) == make_case(3, 5)

    def test_varies_across_index_and_seed(self):
        cases = [make_case(0, i) for i in range(8)]
        assert len({(c.generator, json.dumps(c.graph_params, sort_keys=True))
                    for c in cases}) > 1
        assert make_case(0, 0) != make_case(1, 0)

    def test_case_fields_are_valid(self):
        for index in range(12):
            case = make_case(11, index)
            assert case.generator in ("rmat", "erdos_renyi", "powerlaw")
            assert case.pattern in FUZZ_PATTERNS
            assert case.config_overrides["num_pes"] >= 2
            assert "seed" in case.graph_params

    def test_graph_rebuild_is_reproducible(self):
        case = make_case(5, 2)
        a, b = build_graph(case), build_graph(case)
        assert a.num_vertices == b.num_vertices
        assert np.array_equal(a.indices, b.indices)

    def test_config_rebuild(self):
        case = make_case(5, 3)
        config = build_config(case)
        assert config.num_pes == case.config_overrides["num_pes"]
        assert config.execution_width == case.config_overrides["execution_width"]

    def test_label_mentions_coordinates(self):
        case = make_case(4, 9)
        assert "seed=4" in case.label and "#9" in case.label


class TestFuzzRuns:
    def test_small_burst_passes(self, tmp_path):
        report = run_fuzz(2, 7, out_dir=tmp_path)
        assert report.ok, report.render()
        assert report.bundles == []
        assert not list(tmp_path.iterdir())
        assert "all passed" in report.render()

    def test_single_case_with_invariants(self):
        outcome = run_case(make_case(7, 0))
        assert outcome.ok, outcome.render()

    def test_failure_writes_bundle(self, tmp_path, monkeypatch):
        def failing_run_case(case, *, policies=None, naive_limit=None):
            return OracleReport(
                label=case.label, pattern=case.pattern,
                reference_count=3, reference_tasks_per_depth=[1, 2, 3],
                disagreements=["shogun: 4 matches, reference miner found 3"],
            )

        monkeypatch.setattr(fuzz_mod, "run_case", failing_run_case)
        lines = []
        report = run_fuzz(1, 0, out_dir=tmp_path, progress=lines.append)
        assert not report.ok
        assert len(report.bundles) == 1
        bundle = report.bundles[0]
        assert bundle.exists()
        assert "FAILED" in report.render()
        assert any("FAILED" in line for line in lines)

        payload = json.loads(bundle.read_text())
        assert payload["case"]["seed"] == 0
        assert payload["failure"]["disagreements"]
        assert "repro validate fuzz --replay" in payload["replay"]

    def test_bundle_roundtrip_and_replay(self, tmp_path):
        case = make_case(7, 0)
        report = run_case(case)
        path = write_bundle(tmp_path, case, report)
        assert load_bundle(path) == case
        replayed = replay_bundle(path, policies=("shogun",))
        assert replayed.ok, replayed.render()
        assert replayed.reference_count == report.reference_count

    def test_bundle_filename_is_addressable(self, tmp_path):
        case = make_case(12, 34)
        path = write_bundle(
            tmp_path, case,
            OracleReport(label=case.label, pattern=case.pattern,
                         reference_count=0, reference_tasks_per_depth=[]),
        )
        assert path.name == "fuzz-seed12-case34.json"

    def test_fuzz_case_dataclass_roundtrip(self):
        case = make_case(9, 1)
        clone = FuzzCase(**json.loads(json.dumps(case.__dict__)))
        assert clone == case
