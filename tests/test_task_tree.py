"""Unit tests driving the Shogun task tree FSM directly.

A real accelerator (1 PE, Shogun policy) provides the environment, but
the engine never runs: tests call ``select`` / ``on_complete`` by hand to
exercise spawning, extending, recycling, token flow and the scheduler's
preferences in isolation.
"""

import pytest

from repro.core import TaskState
from repro.graph import from_edges
from repro.patterns import benchmark_schedule
from repro.sim import SimConfig
from repro.sim.accelerator import Accelerator


def make_tree(graph, code="4cl", **cfg):
    config = SimConfig(num_pes=1, **cfg)
    accel = Accelerator(graph, benchmark_schedule(code), config, "shogun")
    pe = accel.pes[0]
    return accel, pe, pe.policy.tree


def finish_task(tree, pe, task, children):
    """Emulate PE completion: attach children and notify the tree."""
    if task.depth < pe.schedule.max_depth:
        task.expansion = pe.context.expand(task.embedding)
        pe.footprint_add(len(task.expansion.candidates) * 4)
    task.children_vertices = list(children)
    task.state = TaskState.COMPLETE
    tree.on_complete(task)


@pytest.fixture()
def k5():
    return from_edges([(u, v) for u in range(5) for v in range(u + 1, 5)])


class TestRootIntake:
    def test_add_root_ready(self, k5):
        _, _, tree = make_tree(k5)
        tree.add_root(4, tree_id=1)
        assert tree.ready_count() == 1
        assert tree.has_work()

    def test_root_slots(self, k5):
        _, _, tree = make_tree(k5, root_bunches=2)
        assert tree.free_root_slots() == 2
        tree.add_root(4, 1)
        assert tree.free_root_slots() == 1

    def test_select_assigns_token(self, k5):
        _, _, tree = make_tree(k5)
        tree.add_root(4, 1)
        task = tree.select(conservative=False)
        assert task.state == TaskState.EXECUTING
        assert task.token is not None
        assert task.set_address is not None


class TestSpawnExtend:
    def test_spawn_fills_bunch(self, k5):
        _, pe, tree = make_tree(k5)
        tree.add_root(4, 1)
        root = tree.select(False)
        finish_task(tree, pe, root, [0, 1, 2, 3])
        assert root.state == TaskState.RESTING
        assert tree.ready_count() == 4
        assert root.unexplored == 0  # all four fit in one bunch

    def test_spawn_partial_bunch(self, k5):
        _, pe, tree = make_tree(k5, bunch_entries=2, execution_width=2, tokens_per_depth=2)
        tree.add_root(4, 1)
        root = tree.select(False)
        finish_task(tree, pe, root, [0, 1, 2, 3])
        assert tree.ready_count() == 2
        assert root.unexplored == 2

    def test_extend_takes_next_candidate(self, k5):
        _, pe, tree = make_tree(k5, bunch_entries=2, execution_width=2, tokens_per_depth=2)
        tree.add_root(4, 1)
        root = tree.select(False)
        finish_task(tree, pe, root, [0, 1, 2, 3])
        child = tree.select(False)
        token = child.token
        finish_task(tree, pe, child, [])  # no children: must extend
        assert root.unexplored == 1
        # The extended task reuses the entry's token.
        ready = [tree.select(False), tree.select(False)]
        extended = [t for t in ready if t.vertex == 2]
        assert extended and extended[0].token == token

    def test_leaf_tasks_need_no_token(self, k5):
        _, pe, tree = make_tree(k5, code="tc")
        tree.add_root(4, 1)
        root = tree.select(False)
        finish_task(tree, pe, root, [0, 1, 2, 3])
        d1 = tree.select(False)
        finish_task(tree, pe, d1, [1, 2])
        # Sibling preference keeps picking depth-1 tasks first; drain until
        # a leaf (depth-2) task comes out.
        leaf = tree.select(False)
        while leaf is not None and leaf.depth != 2:
            leaf = tree.select(False)
        assert leaf is not None and leaf.depth == 2
        assert leaf.token is None


class TestCompletionPropagation:
    def test_tree_completes_bottom_up(self, k5):
        done = []
        accel, pe, tree = make_tree(k5, code="tc")
        tree.on_tree_done = lambda tid: done.append(tid)
        tree.add_root(1, 7)
        root = tree.select(False)
        finish_task(tree, pe, root, [0])
        d1 = tree.select(False)
        finish_task(tree, pe, d1, [])  # no leaf work: extend -> nothing -> done
        assert done == [7]
        assert not tree.has_work()

    def test_tokens_all_released_after_tree(self, k5):
        accel, pe, tree = make_tree(k5, code="tc")
        tree.add_root(2, 1)
        # Drive everything to completion.
        pending = True
        while pending:
            task = tree.select(False)
            if task is None:
                pending = tree.has_work()
                if pending and tree.executing_count() == 0:
                    pytest.fail("tree stalled")
                break
            if task.depth < pe.schedule.max_depth:
                exp = pe.context.expand(task.embedding)
                kids = pe.context.children(task.embedding, exp.candidates)
            else:
                kids = []
            finish_task(tree, pe, task, kids)
        while True:
            task = tree.select(False)
            if task is None:
                break
            if task.depth < pe.schedule.max_depth:
                exp = pe.context.expand(task.embedding)
                kids = pe.context.children(task.embedding, exp.candidates)
            else:
                kids = []
            finish_task(tree, pe, task, kids)
        assert not tree.has_work()
        for pool in tree.tokens.values():
            assert pool.held == 0


class TestSchedulerPreferences:
    def test_sibling_preference(self, k5):
        _, pe, tree = make_tree(k5)
        tree.add_root(4, 1)
        root = tree.select(False)
        finish_task(tree, pe, root, [0, 1, 2, 3])
        picks = [tree.select(False) for _ in range(4)]
        # All four scheduled tasks are siblings from the same bunch.
        assert all(p.parent is root for p in picks)

    def test_conservative_blocks_non_siblings(self, k5):
        _, pe, tree = make_tree(k5, root_bunches=2)
        tree.add_root(4, 1)
        r1 = tree.select(False)
        finish_task(tree, pe, r1, [0, 1])
        d1 = tree.select(conservative=True)
        assert d1.parent is r1
        d2 = tree.select(conservative=True)
        assert d2.parent is r1  # sibling allowed
        # A second tree's root is a non-sibling: blocked while siblings run.
        tree.add_root(3, 2)
        assert tree.select(conservative=True) is None
        # Normal mode mixes freely.
        other = tree.select(conservative=False)
        assert other is not None and other.tree == 2

    def test_quiesced_tree_not_scheduled(self, k5):
        _, pe, tree = make_tree(k5, root_bunches=2)
        tree.add_root(4, 1)
        tree.add_root(3, 2)
        tree.quiesce_tree(1)
        picked = tree.select(False)
        assert picked.tree == 2
        tree.wake_tree(1)
        assert tree.select(False).tree == 1


class TestPartitions:
    def test_add_partition_chain(self, k5):
        _, pe, tree = make_tree(k5)
        chain = tree.add_partition((4, 3), [0, 1], tree_id=5)
        assert [t.depth for t in chain] == [0, 1]
        assert chain[0].state == TaskState.RESTING
        assert chain[1].state == TaskState.RESTING
        assert tree.ready_count() == 2  # the two shipped candidates
        assert tree.has_work()

    def test_partition_interior_has_single_child(self, k5):
        _, pe, tree = make_tree(k5)
        chain = tree.add_partition((4, 3), [0, 1], tree_id=5)
        assert chain[0].children_vertices == [3]
        assert chain[0].unexplored == 0

    def test_harvest_split_pool(self, k5):
        _, pe, tree = make_tree(k5, bunch_entries=2, execution_width=2, tokens_per_depth=2)
        tree.add_root(4, 1)
        root = tree.select(False)
        finish_task(tree, pe, root, [0, 1, 2, 3])
        # Bunch holds Ready [0, 1]; unexplored [2, 3]; one Ready must stay.
        pool = tree.harvest_split_pool(root)
        assert pool == [1, 2, 3]
        assert root.unexplored == 0

    def test_split_potential(self, k5):
        _, pe, tree = make_tree(k5, bunch_entries=2, execution_width=2, tokens_per_depth=2)
        tree.add_root(4, 1)
        root = tree.select(False)
        finish_task(tree, pe, root, [0, 1, 2, 3])
        assert tree.split_potential(root) == 3

    def test_splittable_task_depth_limit(self, k5):
        _, pe, tree = make_tree(k5, bunch_entries=2, execution_width=2, tokens_per_depth=2)
        tree.add_root(4, 1)
        root = tree.select(False)
        finish_task(tree, pe, root, [0, 1, 2, 3])
        found = tree.splittable_task(0)
        assert found is root
