"""Unit tests for automorphism group computation."""

from repro.patterns import (
    automorphism_count,
    automorphisms,
    clique,
    cycle,
    diamond,
    four_cycle,
    orbit_representative,
    star,
    tailed_triangle,
    triangle,
    Pattern,
)


class TestGroupSizes:
    """Known automorphism group orders."""

    def test_triangle(self):
        assert automorphism_count(triangle()) == 6  # S3

    def test_cliques(self):
        assert automorphism_count(clique(4)) == 24  # S4
        assert automorphism_count(clique(5)) == 120  # S5

    def test_four_cycle(self):
        assert automorphism_count(four_cycle()) == 8  # dihedral D4

    def test_diamond(self):
        assert automorphism_count(diamond()) == 4  # swap degree-3 pair x swap degree-2 pair

    def test_tailed_triangle(self):
        assert automorphism_count(tailed_triangle()) == 2  # swap the two free triangle vertices

    def test_star(self):
        assert automorphism_count(star(4)) == 24  # permute leaves

    def test_path(self):
        p = Pattern(4, [(0, 1), (1, 2), (2, 3)])
        assert automorphism_count(p) == 2  # reversal

    def test_asymmetric(self):
        # Smallest asymmetric graph has 6 vertices; this 7-vertex tree is asymmetric.
        p = Pattern(7, [(0, 1), (1, 2), (2, 3), (2, 4), (4, 5), (5, 6)])
        assert automorphism_count(p) == 1


class TestGroupProperties:
    def test_identity_included(self):
        for p in (triangle(), diamond(), four_cycle()):
            assert tuple(range(p.num_vertices)) in automorphisms(p)

    def test_closure_under_composition(self):
        autos = automorphisms(four_cycle())
        auto_set = set(autos)
        for a in autos:
            for b in autos:
                composed = tuple(a[b[i]] for i in range(len(a)))
                assert composed in auto_set

    def test_all_preserve_edges(self):
        p = diamond()
        for perm in automorphisms(p):
            for u, v in p.edge_set:
                assert p.has_edge(perm[u], perm[v])


class TestOrbitRepresentative:
    def test_lex_max(self):
        autos = automorphisms(triangle())
        rep = orbit_representative((1, 5, 3), autos)
        assert rep == (5, 3, 1)

    def test_idempotent(self):
        autos = automorphisms(four_cycle())
        emb = (7, 2, 9, 4)
        rep = orbit_representative(emb, autos)
        assert orbit_representative(rep, autos) == rep

    def test_orbit_members_share_representative(self):
        autos = automorphisms(triangle())
        emb = (1, 5, 3)
        rep = orbit_representative(emb, autos)
        for perm in autos:
            member = tuple(emb[perm[i]] for i in range(3))
            assert orbit_representative(member, autos) == rep
