"""Integration tests: full simulations must count exactly and report
self-consistent metrics for every scheduling policy."""

import pytest

from repro.graph import erdos_renyi_gnm
from repro.mining import count_matches, mine
from repro.patterns import benchmark_schedule
from repro.sim import POLICIES, SimConfig, simulate
from repro.sim.accelerator import Accelerator, policy_factory
from repro.errors import SimulationError

ALL_POLICIES = ["shogun", "fingers", "dfs", "bfs", "parallel-dfs"]


class TestExactCounting:
    """Completeness & uniqueness (§2.1) hold under every exploration order."""

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @pytest.mark.parametrize("code", ["tc", "4cl", "tt_e", "dia_v", "4cyc_e"])
    def test_counts_match_reference(self, small_er, tiny_config, policy, code):
        sched = benchmark_schedule(code)
        expected = count_matches(small_er, sched)
        metrics = simulate(small_er, sched, policy=policy, config=tiny_config)
        assert metrics.matches == expected

    @pytest.mark.parametrize("policy", ["shogun", "fingers"])
    def test_counts_on_skewed_graph(self, skewed_graph, tiny_config, policy):
        sched = benchmark_schedule("tt_e")
        expected = count_matches(skewed_graph, sched)
        assert simulate(skewed_graph, sched, policy=policy, config=tiny_config).matches == expected

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_five_clique(self, medium_er, tiny_config, policy):
        sched = benchmark_schedule("5cl")
        expected = count_matches(medium_er, sched)
        assert simulate(medium_er, sched, policy=policy, config=tiny_config).matches == expected

    def test_task_count_matches_miner(self, small_er, tiny_config, sched_4cl):
        stats = mine(small_er, sched_4cl).stats
        metrics = simulate(small_er, sched_4cl, policy="shogun", config=tiny_config)
        assert metrics.tasks_executed == stats.total_tasks

    def test_static_dispatch_counts(self, small_er, sched_4cl):
        cfg = SimConfig(num_pes=3, root_dispatch="static")
        expected = count_matches(small_er, sched_4cl)
        assert simulate(small_er, sched_4cl, policy="shogun", config=cfg).matches == expected


class TestMetricsConsistency:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_ranges(self, small_er, tiny_config, sched_4cl, policy):
        m = simulate(small_er, sched_4cl, policy=policy, config=tiny_config)
        assert m.cycles > 0
        assert 0.0 <= m.iu_utilization <= 1.0
        assert 0.0 <= m.l1_hit_rate <= 1.0
        assert 0.0 <= m.slot_utilization <= 1.0
        assert 0.0 <= m.barrier_idle_fraction <= 1.0
        assert m.peak_footprint_bytes >= 0
        assert m.trees_completed == small_er.num_vertices

    def test_per_pe_sums(self, small_er, tiny_config, sched_4cl):
        m = simulate(small_er, sched_4cl, policy="shogun", config=tiny_config)
        assert sum(p.matches for p in m.per_pe) == m.matches
        assert sum(p.tasks_executed for p in m.per_pe) == m.tasks_executed

    def test_determinism(self, small_er, tiny_config, sched_4cl):
        a = simulate(small_er, sched_4cl, policy="shogun", config=tiny_config)
        b = simulate(small_er, sched_4cl, policy="shogun", config=tiny_config)
        assert a.cycles == b.cycles
        assert a.l1_hit_rate == b.l1_hit_rate

    def test_speedup_over(self, small_er, tiny_config, sched_4cl):
        shogun = simulate(small_er, sched_4cl, policy="shogun", config=tiny_config)
        dfs = simulate(small_er, sched_4cl, policy="dfs", config=tiny_config)
        assert shogun.speedup_over(dfs) > 1.0
        assert dfs.speedup_over(shogun) < 1.0

    def test_summary_text(self, small_er, tiny_config, sched_4cl):
        m = simulate(small_er, sched_4cl, policy="shogun", config=tiny_config)
        assert "shogun" in m.summary()


class TestSchedulingOrderings:
    """The qualitative relationships of Table 1 / Figure 2."""

    def test_dfs_slowest(self, small_er, tiny_config, sched_4cl):
        dfs = simulate(small_er, sched_4cl, policy="dfs", config=tiny_config)
        for policy in ("shogun", "fingers", "bfs"):
            other = simulate(small_er, sched_4cl, policy=policy, config=tiny_config)
            assert other.cycles < dfs.cycles

    def test_shogun_at_least_matches_fingers(self, skewed_graph, tiny_config):
        sched = benchmark_schedule("tt_e")
        shogun = simulate(skewed_graph, sched, policy="shogun", config=tiny_config)
        fingers = simulate(skewed_graph, sched, policy="fingers", config=tiny_config)
        assert shogun.cycles <= fingers.cycles * 1.05

    def test_dfs_uses_one_slot(self, small_er, tiny_config, sched_4cl):
        m = simulate(small_er, sched_4cl, policy="dfs", config=tiny_config)
        width = tiny_config.execution_width
        assert m.slot_utilization <= 1.0 / width + 0.01

    def test_bfs_has_largest_footprint(self, small_er, tiny_config, sched_4cl):
        bfs = simulate(small_er, sched_4cl, policy="bfs", config=tiny_config)
        dfs = simulate(small_er, sched_4cl, policy="dfs", config=tiny_config)
        assert bfs.peak_footprint_bytes > dfs.peak_footprint_bytes

    def test_fingers_has_barrier_idle(self, skewed_graph, tiny_config):
        sched = benchmark_schedule("4cl")
        m = simulate(skewed_graph, sched, policy="fingers", config=tiny_config)
        assert m.barrier_idle_fraction > 0.0


class TestFactory:
    def test_known_policies(self):
        assert set(POLICIES) == {
            "shogun", "pseudo-dfs", "fingers", "dfs", "bfs", "parallel-dfs"
        }

    def test_unknown_policy(self):
        with pytest.raises(SimulationError):
            policy_factory("zigzag")

    def test_fingers_is_pseudo_dfs(self):
        assert POLICIES["fingers"] is POLICIES["pseudo-dfs"]


class TestEdgeCases:
    def test_empty_graph(self, tiny_config, sched_4cl):
        from repro.graph import empty_graph

        m = simulate(empty_graph(6), sched_4cl, policy="shogun", config=tiny_config)
        assert m.matches == 0
        assert m.trees_completed == 6

    def test_single_pe(self, small_er, sched_4cl):
        cfg = SimConfig(num_pes=1)
        expected = count_matches(small_er, sched_4cl)
        assert simulate(small_er, sched_4cl, policy="shogun", config=cfg).matches == expected

    def test_width_one(self, small_er, sched_4cl):
        cfg = SimConfig(num_pes=2, execution_width=1, bunch_entries=1, tokens_per_depth=1)
        expected = count_matches(small_er, sched_4cl)
        for policy in ("shogun", "fingers", "parallel-dfs"):
            assert simulate(small_er, sched_4cl, policy=policy, config=cfg).matches == expected

    def test_pattern_deeper_than_tree_rejected(self, small_er):
        from repro.patterns import clique, make_schedule

        sched = make_schedule(clique(8), tuple(range(8)))
        cfg = SimConfig(num_pes=1, max_pattern_depth=6)
        with pytest.raises(SimulationError):
            Accelerator(small_er, sched, cfg, "shogun")
