"""Tests for the ablation experiments (small scale: execution paths only)."""

import pytest

from repro.experiments import (
    ablation_conservative_mode,
    ablation_pipeline_throughput,
    ablation_tokens,
    clear_run_cache,
)

SCALE = 0.12


@pytest.fixture(autouse=True, scope="module")
def _clean():
    clear_run_cache()
    yield
    clear_run_cache()


class TestConservativeAblation:
    def test_three_modes_per_case(self):
        result = ablation_conservative_mode(cells=[("wi", "tc")], scale=SCALE)
        assert len(result.rows) == 3
        assert [row[1] for row in result.rows] == ["off", "adaptive", "always"]

    def test_cycles_positive(self):
        result = ablation_conservative_mode(cells=[("wi", "tc")], scale=SCALE)
        assert all(row[2] > 0 for row in result.rows)


class TestTokenAblation:
    def test_monotone_speedup_columns(self):
        result = ablation_tokens(token_counts=(1, 4), scale=SCALE)
        assert result.rows[0][2] == 1.0
        assert result.rows[1][2] >= 1.0  # more tokens never slower here

    def test_stalls_decrease_with_tokens(self):
        result = ablation_tokens(token_counts=(1, 8), scale=SCALE)
        assert result.rows[1][4] <= result.rows[0][4]


class TestPipelineAblation:
    def test_factor_one_is_baseline(self):
        result = ablation_pipeline_throughput(
            cells=[("wi", "tc")], factors=(1.0, 2.0), scale=SCALE
        )
        assert result.rows[0][3] == 1.0
        assert result.rows[1][3] >= 1.0

    def test_render(self):
        result = ablation_pipeline_throughput(
            cells=[("wi", "tc")], factors=(1.0,), scale=SCALE
        )
        assert "pipeline" in result.render().lower()


class TestUnitThroughputConfig:
    def test_faster_units_never_slow_down(self, small_er, sched_4cl):
        from repro.sim import SimConfig, simulate

        slow = simulate(small_er, sched_4cl, policy="shogun",
                        config=SimConfig(num_pes=1))
        fast = simulate(small_er, sched_4cl, policy="shogun",
                        config=SimConfig(num_pes=1, unit_tasks_per_cycle=4.0))
        assert fast.matches == slow.matches
        assert fast.cycles <= slow.cycles
