"""Shared fixtures: small deterministic graphs, schedules and configs."""

from __future__ import annotations

import pytest

from repro.graph import CSRGraph, erdos_renyi_gnm, from_edges, powerlaw_configuration
from repro.patterns import benchmark_schedule
from repro.sim import SimConfig


@pytest.fixture(scope="session")
def tiny_graph() -> CSRGraph:
    """A 5-vertex graph matching Figure 1 of the paper."""
    return from_edges(
        [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (2, 4), (1, 4)],
        name="fig1",
    )


@pytest.fixture(scope="session")
def small_er() -> CSRGraph:
    """A 30-vertex random graph dense enough to contain every pattern."""
    return erdos_renyi_gnm(30, 120, seed=7, name="er30")


@pytest.fixture(scope="session")
def medium_er() -> CSRGraph:
    """A 60-vertex random graph for slightly larger integration tests."""
    return erdos_renyi_gnm(60, 240, seed=11, name="er60")


@pytest.fixture(scope="session")
def skewed_graph() -> CSRGraph:
    """A small skewed graph (hub-heavy) for locality/balance tests."""
    return powerlaw_configuration(
        80, target_avg_degree=6.0, exponent=1.9, seed=3, name="skew80"
    )


@pytest.fixture(scope="session")
def sched_tc():
    return benchmark_schedule("tc")


@pytest.fixture(scope="session")
def sched_4cl():
    return benchmark_schedule("4cl")


@pytest.fixture(scope="session")
def sched_tt_e():
    return benchmark_schedule("tt_e")


@pytest.fixture(scope="session")
def sched_4cyc_v():
    return benchmark_schedule("4cyc_v")


@pytest.fixture()
def tiny_config() -> SimConfig:
    """A 2-PE configuration that keeps unit-test simulations fast."""
    return SimConfig(num_pes=2, l1_kb=4, l2_kb=64, spm_kb=8)
