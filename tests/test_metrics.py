"""Unit tests for metrics containers and aggregation helpers."""

import pytest

from repro.sim import PEMetrics, RunMetrics, geomean


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([3.0]) == 3.0

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_ignores_nonpositive(self):
        assert geomean([0.0, -1.0, 4.0]) == 4.0

    def test_identity(self):
        assert geomean([1.0, 1.0, 1.0]) == pytest.approx(1.0)


class TestRunMetrics:
    def test_speedup_over(self):
        fast = RunMetrics(policy="a", cycles=50.0)
        slow = RunMetrics(policy="b", cycles=100.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)
        assert slow.speedup_over(fast) == pytest.approx(0.5)

    def test_speedup_zero_cycles(self):
        zero = RunMetrics(policy="a", cycles=0.0)
        other = RunMetrics(policy="b", cycles=10.0)
        assert zero.speedup_over(other) == float("inf")

    def test_summary_contains_key_numbers(self):
        m = RunMetrics(policy="shogun", cycles=123.0, matches=7)
        text = m.summary()
        assert "shogun" in text and "123" in text and "7" in text

    def test_default_collections(self):
        m = RunMetrics(policy="x")
        assert m.per_pe == []
        assert m.extra == {}


class TestPEMetrics:
    def test_hit_rate(self):
        pm = PEMetrics(pe_id=0, l1_hits=3, l1_misses=1)
        assert pm.l1_hit_rate == pytest.approx(0.75)

    def test_hit_rate_no_accesses(self):
        assert PEMetrics(pe_id=0).l1_hit_rate == 0.0


class TestSerialization:
    def _run(self) -> RunMetrics:
        return RunMetrics(
            policy="shogun",
            cycles=1234.5,
            matches=42,
            split_rounds=3,
            extra={"custom": 1.5},
            per_pe=[
                PEMetrics(pe_id=0, tasks_executed=10, l1_hits=9, l1_misses=1),
                PEMetrics(pe_id=1, iu_utilization=0.5, token_stalls=2),
            ],
        )

    def test_round_trip_equality(self):
        original = self._run()
        assert RunMetrics.from_dict(original.to_dict()) == original

    def test_round_trip_through_json(self):
        import json

        original = self._run()
        rebuilt = RunMetrics.from_dict(json.loads(json.dumps(original.to_dict())))
        assert rebuilt == original
        assert rebuilt.per_pe[0].l1_hit_rate == pytest.approx(0.9)

    def test_pe_metrics_round_trip(self):
        pm = PEMetrics(pe_id=3, busy_slot_cycles=7.5, conservative_entries=2)
        assert PEMetrics.from_dict(pm.to_dict()) == pm

    def test_unknown_keys_ignored(self):
        data = self._run().to_dict()
        data["added_in_future_version"] = 99
        data["per_pe"][0]["novel_counter"] = 1
        rebuilt = RunMetrics.from_dict(data)
        assert rebuilt.matches == 42
