"""Behavioral unit tests for the scheduling policies themselves."""

import pytest

from repro.core import chunked
from repro.errors import SimulationError
from repro.graph import from_edges
from repro.patterns import benchmark_schedule
from repro.sim import SimConfig
from repro.sim.accelerator import Accelerator


def fresh_pe(graph, policy, code="4cl", **cfg):
    config = SimConfig(num_pes=1, **cfg)
    accel = Accelerator(graph, benchmark_schedule(code), config, policy)
    return accel, accel.pes[0]


@pytest.fixture()
def k5():
    return from_edges([(u, v) for u in range(5) for v in range(u + 1, 5)])


class TestChunked:
    def test_exact(self):
        assert chunked([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_remainder(self):
        assert chunked([1, 2, 3], 2) == [[1, 2], [3]]

    def test_empty(self):
        assert chunked([], 3) == []

    def test_bad_size(self):
        with pytest.raises(ValueError):
            chunked([1], 0)


class TestGroupDFS:
    def test_single_tree_at_a_time(self, k5):
        accel, pe = fresh_pe(k5, "fingers")
        pe.policy.add_root(4)
        assert not pe.policy.wants_root()
        with pytest.raises(SimulationError):
            pe.policy.add_root(3)

    def test_group_barrier(self, k5):
        accel, pe = fresh_pe(k5, "fingers", execution_width=2)
        policy = pe.policy
        policy.add_root(4)
        root = policy.select_task()
        assert policy.select_task() is None  # group of one: the root
        root.children_vertices = [0, 1, 2]
        policy.on_task_complete(root)
        a = policy.select_task()
        b = policy.select_task()
        assert policy.select_task() is None  # group size = width = 2
        a.children_vertices = []
        policy.on_task_complete(a)
        # Barrier: b still outstanding, nothing new released.
        assert policy.select_task() is None
        b.children_vertices = []
        policy.on_task_complete(b)
        assert policy.select_task() is not None  # next group: [2]

    def test_dfs_is_group_of_one(self, k5):
        accel, pe = fresh_pe(k5, "dfs", execution_width=8)
        policy = pe.policy
        assert policy.group_size == 1
        policy.add_root(4)
        policy.select_task()
        assert policy.select_task() is None

    def test_ready_count(self, k5):
        accel, pe = fresh_pe(k5, "fingers")
        policy = pe.policy
        assert policy.ready_count() == 0
        policy.add_root(4)
        assert policy.ready_count() == 1


class TestBFS:
    def test_level_by_level(self, k5):
        accel, pe = fresh_pe(k5, "bfs", code="tc", execution_width=8)
        policy = pe.policy
        policy.add_root(4)
        root = policy.select_task()
        root.children_vertices = [0, 1, 2, 3]
        policy.on_task_complete(root)
        level1 = [policy.select_task() for _ in range(4)]
        assert all(t is not None and t.depth == 1 for t in level1)
        # Inter-depth barrier: no depth-2 tasks until the level drains.
        level1[0].children_vertices = [0]
        policy.on_task_complete(level1[0])
        assert policy.select_task() is None
        for t in level1[1:]:
            t.children_vertices = []
            policy.on_task_complete(t)
        nxt = policy.select_task()
        assert nxt is not None and nxt.depth == 2


class TestParallelDFS:
    def test_wants_roots_up_to_tree_count(self, k5):
        accel, pe = fresh_pe(k5, "parallel-dfs", execution_width=3)
        policy = pe.policy
        for v in (4, 3, 2):
            assert policy.wants_root()
            policy.add_root(v)
        assert not policy.wants_root()

    def test_trees_progress_independently(self, k5):
        accel, pe = fresh_pe(k5, "parallel-dfs", execution_width=2)
        policy = pe.policy
        policy.add_root(4)
        policy.add_root(3)
        a = policy.select_task()
        b = policy.select_task()
        assert {a.vertex, b.vertex} == {4, 3}
        a.children_vertices = []
        policy.on_task_complete(a)  # tree of `a` finished
        assert policy.trees_completed == 1
        assert policy.wants_root()

    def test_overfull_root_rejected(self, k5):
        accel, pe = fresh_pe(k5, "parallel-dfs", execution_width=1)
        policy = pe.policy
        policy.add_root(4)
        with pytest.raises(SimulationError):
            policy.add_root(3)


class TestShogunPolicyGlue:
    def test_wants_one_root_without_merging(self, k5):
        accel, pe = fresh_pe(k5, "shogun")
        policy = pe.policy
        assert policy.wants_root()
        policy.add_root(4)
        assert not policy.wants_root()

    def test_conservative_override(self, k5):
        from repro.core import ShogunPolicy

        accel, pe = fresh_pe(k5, "shogun")
        forced = ShogunPolicy(pe, conservative_override=True)
        assert forced._conservative_now() is True

    def test_has_work_lifecycle(self, k5):
        accel, pe = fresh_pe(k5, "shogun", code="tc")
        policy = pe.policy
        assert not policy.has_work()
        policy.add_root(0)
        assert policy.has_work()
