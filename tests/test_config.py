"""Unit tests for the simulator configuration."""

import pytest

from repro.errors import ConfigError
from repro.sim import DEFAULT_CONFIG, SimConfig


class TestDefaults:
    def test_table3_values(self):
        cfg = DEFAULT_CONFIG
        assert cfg.num_pes == 10
        assert cfg.execution_width == 8
        assert cfg.num_dividers == 12
        assert cfg.num_ius == 24
        assert cfg.cache_line_bytes == 64
        assert cfg.spm_kb == 16
        assert cfg.l1_kb == 32 and cfg.l1_assoc == 4
        assert cfg.l2_kb == 4096 and cfg.l2_assoc == 8
        assert cfg.dram_channels == 4
        assert cfg.l1_latency_threshold == 50.0
        assert cfg.iu_util_threshold == 0.5

    def test_task_tree_entries_is_178(self):
        assert DEFAULT_CONFIG.task_tree_entries() == 178

    def test_derived_lines(self):
        assert DEFAULT_CONFIG.l1_lines == 512
        assert DEFAULT_CONFIG.spm_lines == 256
        assert DEFAULT_CONFIG.elements_per_line == 16


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_pes", 0),
            ("execution_width", 0),
            ("bunch_entries", 0),
            ("bunches_per_depth", 0),
            ("tokens_per_depth", 0),
            ("l1_kb", 0),
            ("l2_kb", -1),
            ("spm_kb", 0),
            ("cache_line_bytes", 0),
            ("l1_assoc", 0),
            ("segment_elements", 0),
            ("segment_cycles", 0),
            ("num_ius", 0),
            ("num_dividers", 0),
            ("root_dispatch", "random"),
            ("unit_tasks_per_cycle", 0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ConfigError):
            SimConfig(**{field: value})


class TestReplace:
    def test_replace_copies(self):
        small = DEFAULT_CONFIG.replace(num_pes=2)
        assert small.num_pes == 2
        assert DEFAULT_CONFIG.num_pes == 10

    def test_replace_validates(self):
        with pytest.raises(ConfigError):
            DEFAULT_CONFIG.replace(num_pes=-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.num_pes = 3

    def test_hashable(self):
        assert hash(DEFAULT_CONFIG) == hash(SimConfig())
        assert DEFAULT_CONFIG == SimConfig()
