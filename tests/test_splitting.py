"""Unit + integration tests for task-tree splitting (§4.1)."""

import pytest

from repro.core import apportion_helpers
from repro.core.splitting import Partition, plan_partitions
from repro.graph import powerlaw_configuration, degree_sorted
from repro.mining import count_matches
from repro.patterns import benchmark_schedule
from repro.sim import SimConfig, simulate
from repro.sim.accelerator import Accelerator


class TestApportion:
    def test_even_split(self):
        assignment = apportion_helpers([1, 2], [10, 11, 12, 13], max_helpers=4)
        assert sorted(len(v) for v in assignment.values()) == [2, 2]

    def test_max_helpers_cap(self):
        assignment = apportion_helpers([1], list(range(10, 20)), max_helpers=4)
        assert len(assignment[1]) == 4

    def test_no_idle(self):
        assert apportion_helpers([1], [], 4) == {1: []}

    def test_no_busy(self):
        assert apportion_helpers([], [5], 4) == {}

    def test_all_idle_assigned_when_capacity(self):
        assignment = apportion_helpers([1, 2, 3], [7, 8], max_helpers=4)
        assigned = [pe for helpers in assignment.values() for pe in helpers]
        assert sorted(assigned) == [7, 8]


class TestPartitionMessage:
    def test_message_lines_includes_headers(self):
        p = Partition(prefix=(3,), children=(1, 2), set_lines=5, donor_pe=0)
        assert p.message_lines == 7

    def test_plan_partitions_roundtrip(self, small_er):
        cfg = SimConfig(num_pes=1, bunch_entries=2, execution_width=2, tokens_per_depth=2)
        accel = Accelerator(small_er, benchmark_schedule("4cl"), cfg, "shogun")
        pe = accel.pes[0]
        tree = pe.policy.tree
        tree.add_root(20, 1)
        root = tree.select(False)
        root.expansion = pe.context.expand(root.embedding)
        root.children_vertices = [0, 1, 2, 3, 4, 5]
        root.state = root.state
        tree.on_complete(root)
        partitions = plan_partitions(pe.policy, helpers=2)
        assert partitions
        shipped = [v for p in partitions for v in p.children]
        kept = root.children_vertices[root.next_child:]
        # Shipped + donor's remaining candidates cover the withdrawn pool.
        assert set(shipped).isdisjoint(kept)
        assert all(p.prefix == (20,) for p in partitions)

    def test_plan_partitions_nothing_to_split(self, small_er):
        cfg = SimConfig(num_pes=1)
        accel = Accelerator(small_er, benchmark_schedule("4cl"), cfg, "shogun")
        assert plan_partitions(accel.pes[0].policy, helpers=2) == []

    def test_zero_helpers(self, small_er):
        cfg = SimConfig(num_pes=1)
        accel = Accelerator(small_er, benchmark_schedule("4cl"), cfg, "shogun")
        assert plan_partitions(accel.pes[0].policy, helpers=0) == []


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def tail_graph(self):
        """A graph with a few dominant trees (splitting-prone workload)."""
        return degree_sorted(
            powerlaw_configuration(120, target_avg_degree=10.0, exponent=1.8, seed=17)
        )

    def test_counts_exact_with_splitting(self, tail_graph):
        sched = benchmark_schedule("4cl")
        expected = count_matches(tail_graph, sched)
        cfg = SimConfig(
            num_pes=8, enable_splitting=True, lb_check_interval=200, l1_kb=4, l2_kb=64
        )
        m = simulate(tail_graph, sched, policy="shogun", config=cfg)
        assert m.matches == expected

    def test_counts_exact_all_patterns(self, tail_graph):
        cfg = SimConfig(
            num_pes=8, enable_splitting=True, lb_check_interval=200, l1_kb=4, l2_kb=64
        )
        for code in ("tc", "tt_e", "dia_v"):
            sched = benchmark_schedule(code)
            expected = count_matches(tail_graph, sched)
            m = simulate(tail_graph, sched, policy="shogun", config=cfg)
            assert m.matches == expected, code

    def test_splitting_never_slows_down_much(self, tail_graph):
        sched = benchmark_schedule("4cl")
        base_cfg = SimConfig(num_pes=8, l1_kb=4, l2_kb=64)
        lb_cfg = base_cfg.replace(enable_splitting=True, lb_check_interval=200)
        base = simulate(tail_graph, sched, policy="shogun", config=base_cfg)
        balanced = simulate(tail_graph, sched, policy="shogun", config=lb_cfg)
        assert balanced.cycles <= base.cycles * 1.10

    def test_partition_traffic_counted(self, tail_graph):
        sched = benchmark_schedule("5cl")
        cfg = SimConfig(
            num_pes=12, enable_splitting=True, lb_check_interval=100, l1_kb=4, l2_kb=64
        )
        m = simulate(tail_graph, sched, policy="shogun", config=cfg)
        if m.partitions_sent:
            assert m.noc_messages >= m.partitions_sent
            assert m.split_rounds >= 1
