"""Correctness tests for the reference miner against the naive oracle."""

import pytest

from repro.graph import empty_graph, erdos_renyi_gnm, from_edges
from repro.mining import count_matches, count_unique_subgraphs, mine
from repro.patterns import (
    BENCHMARK_CODES,
    benchmark_schedule,
    get_pattern,
    make_schedule,
    clique,
    orbit_representative,
    automorphisms,
)


def _base_code(code):
    return code[:-2] if code.endswith(("_e", "_v")) else code


class TestAgainstOracle:
    @pytest.mark.parametrize("code", BENCHMARK_CODES)
    def test_all_benchmark_schedules(self, small_er, code):
        sched = benchmark_schedule(code)
        pattern = get_pattern(_base_code(code))
        expected = count_unique_subgraphs(small_er, pattern, induced=sched.induced)
        assert count_matches(small_er, sched) == expected

    @pytest.mark.parametrize("code", ["tc", "4cl", "4cyc_e", "dia_v"])
    def test_on_skewed_graph(self, skewed_graph, code):
        sched = benchmark_schedule(code)
        pattern = get_pattern(_base_code(code))
        expected = count_unique_subgraphs(skewed_graph, pattern, induced=sched.induced)
        assert count_matches(skewed_graph, sched) == expected

    def test_fig1_four_cliques(self, tiny_graph):
        # Figure 1 finds exactly the pattern's subgraphs in the 5-vertex graph.
        assert count_matches(tiny_graph, benchmark_schedule("4cl")) == count_unique_subgraphs(
            tiny_graph, clique(4)
        )

    def test_empty_graph(self):
        assert count_matches(empty_graph(10), benchmark_schedule("tc")) == 0

    def test_clique_on_complete_graph(self):
        k6 = from_edges([(u, v) for u in range(6) for v in range(u + 1, 6)])
        assert count_matches(k6, benchmark_schedule("4cl")) == 15  # C(6,4)
        assert count_matches(k6, benchmark_schedule("5cl")) == 6  # C(6,5)
        assert count_matches(k6, benchmark_schedule("tc")) == 20  # C(6,3)


class TestEmbeddings:
    def test_embeddings_are_valid_and_unique(self, small_er):
        sched = benchmark_schedule("4cl")
        result = mine(small_er, sched, collect_embeddings=True)
        autos = automorphisms(sched.pattern)
        seen_orbits = set()
        for emb in result.embeddings:
            assert len(set(emb)) == len(emb)
            # All pattern edges present.
            for d in range(1, sched.depth):
                for e in sched.connected[d]:
                    assert small_er.has_edge(emb[e], emb[d])
            orbit = orbit_representative(emb, autos)
            assert orbit not in seen_orbits  # uniqueness
            seen_orbits.add(orbit)

    def test_embeddings_lex_max(self, small_er):
        sched = benchmark_schedule("tc")
        result = mine(small_er, sched, collect_embeddings=True)
        autos = automorphisms(sched.pattern)
        for emb in result.embeddings:
            assert orbit_representative(emb, autos) == emb

    def test_vertex_induced_excludes_extra_edges(self, small_er):
        sched = benchmark_schedule("4cyc_v")
        result = mine(small_er, sched, collect_embeddings=True)
        order = sched.order
        for emb in result.embeddings:
            for (u, v) in sched.pattern.non_edges():
                du = order.index(u)
                dv = order.index(v)
                assert not small_er.has_edge(emb[du], emb[dv])


class TestStats:
    def test_task_counts(self, tiny_graph, sched_tc):
        result = mine(tiny_graph, sched_tc)
        stats = result.stats
        assert stats.tasks_per_depth[0] == tiny_graph.num_vertices
        assert stats.tasks_per_depth[-1] == result.count
        assert stats.total_tasks == sum(stats.tasks_per_depth)

    def test_expanding_tasks_excludes_leaves(self, tiny_graph, sched_tc):
        stats = mine(tiny_graph, sched_tc).stats
        assert stats.expanding_tasks == stats.total_tasks - stats.tasks_per_depth[-1]

    def test_comparisons_positive(self, small_er, sched_4cl):
        assert mine(small_er, sched_4cl).stats.total_comparisons > 0

    def test_avg_intermediate_lines(self, small_er, sched_4cl):
        stats = mine(small_er, sched_4cl).stats
        assert stats.avg_intermediate_lines_per_task >= 0.0

    def test_max_matches_early_stop(self, small_er, sched_tt_e):
        full = mine(small_er, sched_tt_e)
        capped = mine(small_er, sched_tt_e, max_matches=5)
        assert capped.count == 5
        assert capped.stats.total_tasks < full.stats.total_tasks


class TestMetamorphic:
    def test_isolated_vertices_do_not_change_counts(self, small_er, sched_4cl):
        padded = from_edges(small_er.to_edge_list(), num_vertices=50)
        assert count_matches(padded, sched_4cl) == count_matches(small_er, sched_4cl)

    def test_relabel_invariance(self, small_er, sched_tc):
        import numpy as np

        rng = np.random.default_rng(0)
        perm = rng.permutation(small_er.num_vertices)
        edges = [(int(perm[u]), int(perm[v])) for u, v in small_er.edges()]
        shuffled = from_edges(edges, num_vertices=small_er.num_vertices)
        assert count_matches(shuffled, sched_tc) == count_matches(small_er, sched_tc)

    def test_order_choice_does_not_change_count(self, small_er):
        from repro.patterns import tailed_triangle, valid_orders

        pattern = tailed_triangle()
        counts = set()
        for order in list(valid_orders(pattern))[:6]:
            sched = make_schedule(pattern, order)
            counts.add(count_matches(small_er, sched))
        assert len(counts) == 1
