"""Tests for the ``repro serve`` subsystem (docs/service.md).

Covers the acceptance criteria: daemon-served metrics byte-identical
to direct execution (cold and cached), K concurrent identical
submissions coalescing onto exactly one execution, structured failure
events that leave the pool warm, reject-based backpressure, graceful
shutdown without shared-memory residue, atomic cache writes under
racing writers, and SIGTERM/SIGINT draining in the batch scheduler.

Everything that can run on the in-process transport does — it is
deterministic and carries the exact message dictionaries the socket
transports serialize (the codec round-trip is enforced by the
transport itself).  One test exercises a real unix socket end to end.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.experiments import clear_run_cache, eval_config
from repro.experiments.runner import simulate_cell
from repro.orchestrator import CellSpec, ResultCache, cell_key
from repro.orchestrator import executor as executor_mod
from repro.service import (
    AsyncServiceClient,
    InProcListener,
    ReproService,
    cell_from_wire,
    cell_to_wire,
    protocol,
    serve_inproc,
)
from repro.service.transports import UnixListener, parse_address

SCALE = 0.05
CELL = {"dataset": "wi", "pattern": "tc", "policy": "shogun",
        "scale": SCALE, "verify": True}


@pytest.fixture(autouse=True)
def _clean_memo():
    clear_run_cache()
    yield
    clear_run_cache()


def run(coro):
    return asyncio.run(coro)


def _spec() -> CellSpec:
    return CellSpec("wi", "tc", "shogun", SCALE, eval_config(), True)


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------

class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"op": "submit", "id": "r1", "cell": dict(CELL)}
        assert protocol.decode(protocol.encode(message).strip()) == message

    def test_decode_rejects_garbage(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"not json")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"[1, 2]")  # not an object

    def test_cell_wire_roundtrip_preserves_key(self):
        spec = _spec()
        assert cell_key(cell_from_wire(cell_to_wire(spec))) == cell_key(spec)

    def test_partial_config_is_eval_overrides(self):
        spec = cell_from_wire({**CELL, "config": {"num_pes": 8}})
        assert spec.config == eval_config(num_pes=8)

    def test_absent_config_addresses_experiment_cells(self):
        assert cell_key(cell_from_wire(dict(CELL))) == cell_key(_spec())

    def test_missing_coordinates_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="missing"):
            cell_from_wire({"dataset": "wi"})

    def test_unknown_config_field_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="unknown config"):
            cell_from_wire({**CELL, "config": {"num_pse": 8}})

    def test_invalid_config_value_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="invalid cell"):
            cell_from_wire({**CELL, "config": {"num_pes": -3}})

    def test_parse_address(self):
        assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_address("./x.sock") == ("unix", "./x.sock")
        assert parse_address("tcp:127.0.0.1:7777") == ("tcp", "127.0.0.1", 7777)
        with pytest.raises(protocol.ProtocolError):
            parse_address("tcp:no-port")


# ----------------------------------------------------------------------
# the acceptance criteria, on the in-process transport
# ----------------------------------------------------------------------

class TestServiceRoundtrip:
    def test_daemon_metrics_byte_identical_to_direct(self):
        direct = simulate_cell("wi", "tc", "shogun", config=eval_config(),
                               scale=SCALE, verify=True)

        async def main():
            async with serve_inproc(jobs=1, cache=None) as (_service, listener):
                async with AsyncServiceClient.inproc(listener) as client:
                    return await client.submit_metrics(dict(CELL))

        final = run(main())
        assert final["source"] == "computed"
        canon = lambda d: json.dumps(d, sort_keys=True)
        assert canon(final["metrics"]) == canon(direct.to_dict())

    def test_streams_full_lifecycle(self):
        async def main():
            events = []
            async with serve_inproc(jobs=1, cache=None) as (_service, listener):
                async with AsyncServiceClient.inproc(listener) as client:
                    final = await client.submit(
                        dict(CELL), watch=True,
                        on_event=lambda m: events.append(m["event"]),
                    )
            return events, final

        events, final = run(main())
        assert events == ["queued", "staging", "running", "done"]
        assert final["timing"].keys() >= {"queued", "running", "done"}
        assert final["worker"]["pid"] == os.getpid()  # jobs=1: in-process

    def test_cache_read_through_is_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")

        async def submit_once():
            async with serve_inproc(jobs=1, cache=cache) as (service, listener):
                async with AsyncServiceClient.inproc(listener) as client:
                    final = await client.submit_metrics(dict(CELL))
            return final, service.executor.executions

        cold, cold_execs = run(submit_once())
        assert cold["source"] == "computed" and cold_execs == 1
        # A fresh daemon over the same cache must not execute at all.
        warm, warm_execs = run(submit_once())
        assert warm["source"] == "cache" and warm_execs == 0
        canon = lambda d: json.dumps(d, sort_keys=True)
        assert canon(warm["metrics"]) == canon(cold["metrics"])

    def test_concurrent_identical_submissions_coalesce(self, monkeypatch):
        release = threading.Event()
        real = executor_mod._execute_cell

        def gated(payload):
            release.wait(timeout=30)
            return real(payload)

        monkeypatch.setattr(executor_mod, "_execute_cell", gated)
        K = 5

        async def main():
            async with serve_inproc(jobs=1, cache=None) as (service, listener):
                clients = [AsyncServiceClient.inproc(listener) for _ in range(K)]
                tasks = [asyncio.ensure_future(c.submit(dict(CELL)))
                         for c in clients]
                # Wait until all K submissions are attached to one job,
                # then let the single gated execution proceed.
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    jobs = list(service.board.inflight.values())
                    if jobs and len(jobs[0].subscribers) == K:
                        break
                    await asyncio.sleep(0.01)
                else:
                    pytest.fail("submissions never coalesced")
                assert len(service.board.inflight) == 1
                release.set()
                finals = await asyncio.gather(*tasks)
                for client in clients:
                    await client.close()
                return finals, service.executor.executions, dict(service.board.stats)

        finals, executions, stats = run(main())
        assert executions == 1  # K submissions, exactly one execution
        assert stats["coalesced"] == K - 1
        payloads = {json.dumps(f["metrics"], sort_keys=True) for f in finals}
        assert len(payloads) == 1
        assert sum(1 for f in finals if f.get("coalesced")) == K - 1

    def test_failing_cell_leaves_pool_warm(self):
        async def main():
            async with serve_inproc(jobs=1, cache=None) as (_service, listener):
                async with AsyncServiceClient.inproc(listener) as client:
                    bad = await client.submit(
                        {**CELL, "policy": "no-such-policy"}
                    )
                    good = await client.submit_metrics(dict(CELL))
            return bad, good

        bad, good = run(main())
        assert bad["event"] == "failed"
        assert bad["error"]["type"]  # structured, not a dropped connection
        assert "no-such-policy" in bad["error"]["message"]
        assert good["source"] == "computed"  # same daemon still serves

    def test_queue_full_rejection(self, monkeypatch):
        release = threading.Event()
        real = executor_mod._execute_cell

        def gated(payload):
            release.wait(timeout=30)
            return real(payload)

        monkeypatch.setattr(executor_mod, "_execute_cell", gated)

        async def main():
            async with serve_inproc(
                jobs=1, cache=None, queue_limit=1
            ) as (service, listener):
                async with AsyncServiceClient.inproc(listener) as client:
                    first = asyncio.ensure_future(client.submit(dict(CELL)))
                    while not service.board.inflight:
                        await asyncio.sleep(0.01)
                    # A *different* cell now exceeds the bound.
                    rejected = await client.submit({**CELL, "pattern": "4cl"})
                    release.set()
                    done = await first
            return rejected, done

        rejected, done = run(main())
        assert rejected["event"] == "failed"
        assert rejected["error"]["type"] == "QueueFull"
        assert done["event"] == "done"  # the admitted job was untouched

    def test_submit_during_shutdown_rejected(self):
        async def main():
            async with serve_inproc(jobs=1, cache=None) as (service, listener):
                async with AsyncServiceClient.inproc(listener) as client:
                    service._stopping = True
                    try:
                        return await client.submit(dict(CELL))
                    finally:
                        # let the context manager's real shutdown proceed
                        service._stopping = False

        final = run(main())
        assert final["error"]["type"] == "ShuttingDown"

    def test_jobs_and_stats_ops(self):
        async def main():
            async with serve_inproc(jobs=1, cache=None) as (_service, listener):
                async with AsyncServiceClient.inproc(listener) as client:
                    await client.submit_metrics(dict(CELL))
                    return await client.jobs(), await client.stats()

        jobs_reply, stats_reply = run(main())
        (job,) = jobs_reply["jobs"]
        assert job["state"] == "done" and job["source"] == "computed"
        assert jobs_reply["staging"][0]["dataset"] == "wi"
        assert stats_reply["stats"]["executed"] == 1
        assert stats_reply["executions"] == 1

    def test_unknown_op_and_bad_cell_replies(self):
        async def main():
            async with serve_inproc(jobs=1, cache=None) as (_service, listener):
                async with AsyncServiceClient.inproc(listener) as client:
                    unknown = await client.request("frobnicate")
                    bad = await client.request("submit", cell={"dataset": "wi"})
            return unknown, bad

        unknown, bad = run(main())
        assert unknown["ok"] is False
        assert unknown["error"]["type"] == "UnknownOp"
        assert bad["error"]["type"] == "ProtocolError"


# ----------------------------------------------------------------------
# shutdown hygiene
# ----------------------------------------------------------------------

def _repro_shm_segments():
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("repro-arena-")}
    except FileNotFoundError:  # no /dev/shm on this platform
        return set()


class TestShutdown:
    def test_client_shutdown_op_stops_daemon(self):
        async def main():
            service = ReproService(jobs=1, cache=None)
            listener = InProcListener()
            await service.start([listener])
            client = AsyncServiceClient.inproc(listener)
            reply = await client.shutdown(drain=True)
            await asyncio.wait_for(service.serve_forever(), timeout=10)
            await client.close()
            return reply

        reply = run(main())
        assert reply["stopping"] is True

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="needs /dev/shm"
    )
    def test_pool_daemon_leaves_no_shm_segments(self):
        before = _repro_shm_segments()

        async def main():
            async with serve_inproc(jobs=2, cache=None) as (service, listener):
                async with AsyncServiceClient.inproc(listener) as client:
                    final = await client.submit_metrics(dict(CELL))
                await service.shutdown(drain=True)
            return final

        final = run(main())
        assert final["event"] == "done"
        assert _repro_shm_segments() <= before  # nothing leaked

    def test_unix_socket_end_to_end(self, tmp_path):
        path = tmp_path / "svc.sock"

        async def main():
            service = ReproService(jobs=1, cache=None)
            listener = UnixListener(path)
            await service.start([listener])
            try:
                client = await AsyncServiceClient.connect(str(path), timeout=5)
                pong = await client.ping()
                final = await client.submit_metrics(dict(CELL))
                await client.close()
            finally:
                await service.shutdown(drain=True)
            return pong, final

        pong, final = run(main())
        assert pong["server"] == "repro-serve"
        assert final["source"] == "computed"
        assert not path.exists()  # listener unlinked its socket


# ----------------------------------------------------------------------
# satellite: cache write atomicity under racing writers
# ----------------------------------------------------------------------

def _hammer_cache(root: str, key: str, rounds: int) -> None:
    from repro.experiments import eval_config
    from repro.orchestrator import CellSpec, ResultCache
    from repro.sim.metrics import RunMetrics

    cache = ResultCache(root)
    spec = CellSpec("wi", "tc", "shogun", 0.05, eval_config(), True)
    for i in range(rounds):
        metrics = RunMetrics(policy="shogun", cycles=float(i + 1))
        cache.put(spec, key, metrics, seconds=0.001 * i)


class TestCacheAtomicity:
    def test_racing_writers_never_tear_an_entry(self, tmp_path):
        root = tmp_path / "cache"
        cache = ResultCache(root)
        key = cell_key(_spec())
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        writers = [
            context.Process(target=_hammer_cache, args=(str(root), key, 150))
            for _ in range(4)
        ]
        for process in writers:
            process.start()
        observed = 0
        torn = []
        deadline = time.monotonic() + 30
        while any(p.is_alive() for p in writers) and time.monotonic() < deadline:
            # get() treats corrupt entries as misses; read the raw file
            # too so a torn write cannot hide behind that tolerance.
            path = cache.path_for(key)
            try:
                raw = path.read_text(encoding="utf-8")
            except (FileNotFoundError, OSError):
                continue
            if raw:
                try:
                    payload = json.loads(raw)
                    assert payload["key"] == key
                    observed += 1
                except ValueError:
                    torn.append(raw[:80])
        for process in writers:
            process.join(timeout=30)
            assert process.exitcode == 0
        assert not torn, f"observed torn cache writes: {torn[:3]}"
        assert observed > 0  # the loop actually raced the writers
        entry = cache.get(key)
        assert entry is not None and entry.metrics.cycles == 150.0

    def test_atomic_write_cleans_tmp_on_failure(self, tmp_path):
        from repro.ioutil import atomic_open

        target = tmp_path / "out.json"
        with pytest.raises(RuntimeError):
            with atomic_open(target, "w") as handle:
                handle.write("partial")
                raise RuntimeError("mid-write crash")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []  # no orphaned temp file


# ----------------------------------------------------------------------
# satellite: SIGTERM/SIGINT drain in the batch scheduler
# ----------------------------------------------------------------------

_INTERRUPT_SCRIPT = r"""
import os, signal, sys
from repro.experiments import eval_config
from repro.orchestrator import CellSpec, Orchestrator, RunManifest, cell_key
from repro.orchestrator import scheduler as sched

specs = {}
for pattern in ("tc", "4cl", "tt_e"):
    spec = CellSpec("wi", pattern, "shogun", 0.05, eval_config(), True)
    specs[cell_key(spec)] = spec

real = sched._execute_cell_group
calls = []

def hooked(group):
    if not calls:
        calls.append(group)
        os.kill(os.getpid(), signal.SIGTERM)  # raises via _InterruptGuard
    return real(group)

sched._execute_cell_group = hooked
manifest = RunManifest(jobs=1)
orchestrator = Orchestrator(jobs=1, cache=None, retries=1)
try:
    orchestrator.run_cells(specs, manifest)
    print("status:no-interrupt")
except KeyboardInterrupt:
    interrupted = [c for c in manifest.cells
                   if (c.error or {}).get("type") == "Interrupted"]
    print(f"status:interrupted cells:{len(manifest.cells)} "
          f"marked:{len(interrupted)}")
"""


class TestSchedulerInterrupt:
    def test_sigterm_drains_and_records_cells(self):
        result = subprocess.run(
            [sys.executable, "-c", _INTERRUPT_SCRIPT],
            capture_output=True, text=True, timeout=120,
            env={**os.environ, "PYTHONPATH": os.path.join(
                os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                "src",
            )},
        )
        assert result.returncode == 0, result.stderr
        assert "status:interrupted" in result.stdout
        # All three cells were pending; every one is accounted for.
        assert "marked:3" in result.stdout

    def test_guard_restores_previous_handlers(self):
        from repro.orchestrator.scheduler import _InterruptGuard

        before_term = signal.getsignal(signal.SIGTERM)
        before_int = signal.getsignal(signal.SIGINT)
        with pytest.raises(KeyboardInterrupt):
            with _InterruptGuard() as guard:
                os.kill(os.getpid(), signal.SIGTERM)
        assert guard.signum == signal.SIGTERM
        assert signal.getsignal(signal.SIGTERM) is before_term
        assert signal.getsignal(signal.SIGINT) is before_int

    def test_guard_is_noop_off_main_thread(self):
        from repro.orchestrator.scheduler import _InterruptGuard

        before = signal.getsignal(signal.SIGTERM)
        seen = []

        def body():
            with _InterruptGuard():
                seen.append(signal.getsignal(signal.SIGTERM))

        worker = threading.Thread(target=body)
        worker.start()
        worker.join()
        assert seen == [before]  # handler untouched from a worker thread
