"""Tests for the kernel backend layer (repro.sim.backend).

Selection and fallback rules, instrumentation, the typed-event engine
path the backends share, and the config/CLI surface.  Numerical parity
across backends lives in ``tests/test_backend_parity.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.mining import setops
from repro.sim import SimConfig
from repro.sim import backend
from repro.sim.backend.compiled import BackendUnavailable
from repro.sim.engine import Engine


@pytest.fixture(autouse=True)
def _restore_backend():
    """Every test leaves the process-global backend as it found it."""
    before = backend.active()
    yield
    backend._install(before)


def _arr(*values):
    return np.asarray(values, dtype=np.int64)


class TestSelection:
    def test_resolve_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "pure")
        assert backend.resolve_name("cext") == "cext"

    def test_resolve_env_wins_over_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "pure")
        assert backend.resolve_name(None) == "pure"

    def test_resolve_defaults_to_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert backend.resolve_name(None) == "auto"

    def test_unknown_env_value_warns_and_uses_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fortran")
        backend._warned.clear()
        with pytest.warns(RuntimeWarning, match="fortran"):
            assert backend.resolve_name(None) == "auto"

    def test_activate_pure_installs_pure(self):
        kernels = backend.activate("pure")
        assert kernels.name == "pure"
        assert not kernels.compiled
        assert backend.active() is kernels
        # The setops dispatchers are rebound with the kernel set.
        assert setops._intersect_impl is kernels.intersect
        assert setops._subtract_impl is kernels.subtract
        assert setops._intersect_multi_impl is kernels.intersect_multi

    def test_auto_picks_first_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        kernels = backend.activate("auto")
        availability = backend.available_backends()
        expected = next(
            name for name in backend.AUTO_ORDER if availability[name][0]
        )
        assert kernels.name == expected

    def test_unavailable_backend_falls_back_with_warning(self, monkeypatch):
        def refuse(name):
            if name == "cext":
                raise BackendUnavailable("synthetic outage")
            return real_get(name)

        real_get = backend._get_instance
        monkeypatch.setattr(backend, "_get_instance", refuse)
        backend._warned.clear()
        with pytest.warns(RuntimeWarning, match="cext"):
            kernels = backend.activate("cext")
        assert kernels.name in ("numba", "pure")

    def test_pure_always_available(self):
        availability = backend.available_backends()
        assert availability["pure"][0] is True

    def test_failure_details_are_reported(self):
        for name, (ok, detail) in backend.available_backends().items():
            assert isinstance(detail, str) and detail


class TestInstrument:
    def test_counts_calls_and_restores(self):
        kernels = backend.activate("pure")
        a = _arr(1, 2, 3, 5)
        b = _arr(2, 3, 4)
        with backend.instrument() as stats:
            setops.intersect(a, b)
            setops.intersect(a, b)
            setops.subtract(a, b)
        assert stats["intersect"][0] == 2
        assert stats["subtract"][0] == 1
        assert stats["intersect"][1] >= 0.0
        # Wrappers removed: the dispatchers are the originals again.
        assert setops._intersect_impl is kernels.intersect

    def test_empty_operands_bypass_the_kernel(self):
        backend.activate("pure")
        with backend.instrument() as stats:
            setops.intersect(_arr(), _arr(1, 2))
        assert stats["intersect"][0] == 0


class TestConfigKnob:
    def test_default_is_none(self):
        assert SimConfig().backend is None

    @pytest.mark.parametrize("name", ["auto", "pure", "numba", "cext"])
    def test_valid_names_accepted(self, name):
        assert SimConfig(backend=name).backend == name

    def test_invalid_name_rejected(self):
        with pytest.raises(ConfigError, match="backend"):
            SimConfig(backend="fortran")

    def test_config_backend_activates_at_construction(self, tiny_graph, monkeypatch):
        from repro.patterns import benchmark_schedule
        from repro.sim.accelerator import Accelerator

        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        config = SimConfig(num_pes=1, backend="pure")
        Accelerator(tiny_graph, benchmark_schedule("tc"), config, "shogun")
        assert backend.active().name == "pure"


class _Sink:
    """Typed-event owner recording how dispatch reached it."""

    def __init__(self):
        self.single = []
        self.batches = []

    def dispatch_event(self, payload):
        self.single.append(payload)

    def dispatch_events(self, payloads):
        self.batches.append(list(payloads))


class TestTypedEvents:
    def test_post_runs_through_owner(self):
        engine = Engine()
        sink = _Sink()
        engine.post(1.0, sink, "a")
        engine.run()
        assert sink.single == ["a"]
        assert sink.batches == []

    def test_consecutive_same_owner_events_batch(self):
        engine = Engine()
        sink = _Sink()
        for payload in ("a", "b", "c"):
            engine.post(2.0, sink, payload)
        engine.run()
        assert sink.batches == [["a", "b", "c"]]
        assert sink.single == []

    def test_mixed_bucket_preserves_fifo_order(self):
        engine = Engine()
        sink, other = _Sink(), _Sink()
        order = []
        engine.post(1.0, sink, 1)
        engine.post(1.0, sink, 2)
        engine.at(1.0, lambda: order.append("call"))
        engine.post(1.0, sink, 3)
        engine.post(1.0, other, 4)
        engine.run()
        # The callable splits sink's run; the owner change splits again.
        assert sink.batches == [[1, 2]]
        assert sink.single == [3]
        assert other.single == [4]
        assert order == ["call"]

    def test_post_rejects_past_times(self):
        engine = Engine()
        engine.at(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.post(1.0, _Sink(), "late")

    def test_max_events_dispatches_singly(self):
        engine = Engine()
        sink = _Sink()
        for payload in range(4):
            engine.post(1.0, sink, payload)
        assert engine.run(max_events=2) == 2
        assert sink.single == [0, 1]
        # The unbounded drain batches the requeued remainder as a cohort.
        assert engine.run() == 2
        assert sink.single == [0, 1]
        assert sink.batches == [[2, 3]]


class TestPendingCounter:
    def test_counts_all_event_shapes(self):
        engine = Engine()
        engine.at(1.0, lambda: None)
        engine.after(2.0, lambda: None)
        engine.post(3.0, _Sink(), "x")
        assert engine.pending() == 3
        engine.run()
        assert engine.pending() == 0

    def test_max_events_requeue_keeps_count(self):
        engine = Engine()
        for _ in range(5):
            engine.at(1.0, lambda: None)
        engine.run(max_events=2)
        assert engine.pending() == 3
        engine.run()
        assert engine.pending() == 0

    def test_events_scheduled_during_drain_counted(self):
        engine = Engine()

        def chain():
            engine.after(1.0, lambda: None)

        engine.at(1.0, chain)
        engine.run(max_events=1)
        assert engine.pending() == 1

    def test_exception_drops_bucket_consistently(self):
        engine = Engine()

        def boom():
            raise RuntimeError("boom")

        engine.at(1.0, boom)
        engine.at(1.0, lambda: None)  # dropped with its bucket
        engine.at(2.0, lambda: None)  # later timestamps stay queued
        with pytest.raises(RuntimeError):
            engine.run()
        assert engine.pending() == 1


class TestInstrumentedDispatchFallback:
    def test_wrapped_complete_task_sees_every_event(self, tiny_graph):
        """Instance-attribute instrumentation forces per-task dispatch."""
        from repro.patterns import benchmark_schedule
        from repro.sim.accelerator import Accelerator

        accel = Accelerator(
            tiny_graph, benchmark_schedule("tc"), SimConfig(num_pes=1), "shogun"
        )
        pe = accel.pes[0]
        seen = []
        original = pe._complete_task
        pe._complete_task = lambda task: (seen.append(task), original(task))[1]
        metrics = accel.run()
        assert len(seen) == metrics.tasks_executed
