"""Unit tests for reporting helpers and figure plumbing."""

import pytest

from repro.experiments.figures import FigureResult, _width_config
from repro.experiments.reporting import _fmt, percent, render_table
from repro.experiments.tables import TableResult


class TestFormatting:
    def test_fmt_large_float(self):
        assert _fmt(1234.5) == "1234"

    def test_fmt_medium_float(self):
        assert _fmt(12.345) == "12.35"

    def test_fmt_small_float(self):
        assert _fmt(0.1234) == "0.123"

    def test_fmt_zero(self):
        assert _fmt(0.0) == "0"

    def test_fmt_non_float(self):
        assert _fmt("abc") == "abc"
        assert _fmt(7) == "7"

    def test_percent_rounding(self):
        assert percent(1.005) == "+0%"
        assert percent(2.0) == "+100%"


class TestRenderTable:
    def test_column_widths(self):
        text = render_table(["x", "longheader"], [["value", 1]])
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[1])

    def test_no_title(self):
        text = render_table(["a"], [[1]])
        assert text.splitlines()[0].startswith("a")

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestWidthConfig:
    def test_ties_width_bunches_tokens(self):
        cfg = _width_config(4)
        assert cfg.execution_width == 4
        assert cfg.bunch_entries == 4
        assert cfg.tokens_per_depth == 4

    def test_overrides_pass_through(self):
        cfg = _width_config(2, l1_kb=32)
        assert cfg.l1_kb == 32


class TestResultContainers:
    def test_figure_result_render(self):
        result = FigureResult(
            name="F", headers=["a"], rows=[[1]], summary="note"
        )
        out = result.render()
        assert out.startswith("F")
        assert out.endswith("note")

    def test_table_result_render_notes(self):
        result = TableResult(name="T", headers=["a"], rows=[[1]], notes="n")
        assert result.render().endswith("n")

    def test_raw_defaults(self):
        assert FigureResult(name="F", headers=[], rows=[]).raw == {}
