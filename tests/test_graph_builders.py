"""Unit tests for graph builders (normalization to canonical form)."""

import pytest

from repro.errors import GraphError
from repro.graph import from_adjacency, from_edges, from_networkx


class TestFromEdges:
    def test_dedup(self):
        g = from_edges([(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loops_dropped(self):
        g = from_edges([(0, 0), (0, 1), (2, 2)])
        assert g.num_edges == 1
        assert g.num_vertices == 3  # vertex 2 kept as isolated

    def test_num_vertices_inferred(self):
        g = from_edges([(0, 5)])
        assert g.num_vertices == 6

    def test_num_vertices_explicit(self):
        g = from_edges([(0, 1)], num_vertices=10)
        assert g.num_vertices == 10
        assert g.degree(9) == 0

    def test_num_vertices_too_small(self):
        with pytest.raises(GraphError):
            from_edges([(0, 5)], num_vertices=3)

    def test_negative_vertex(self):
        with pytest.raises(GraphError):
            from_edges([(-1, 2)])

    def test_bad_edge_shape(self):
        with pytest.raises(GraphError):
            from_edges([(1,)])

    def test_empty(self):
        g = from_edges([])
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_symmetry(self):
        g = from_edges([(2, 7), (7, 3)])
        assert g.has_edge(7, 2) and g.has_edge(2, 7)
        assert g.has_edge(3, 7) and g.has_edge(7, 3)

    def test_name(self):
        assert from_edges([(0, 1)], name="zap").name == "zap"


class TestFromAdjacency:
    def test_mapping(self):
        g = from_adjacency({0: [1, 2], 1: [2]})
        assert g.num_edges == 3

    def test_list(self):
        g = from_adjacency([[1], [0, 2], [1]])
        assert g.num_edges == 2

    def test_asymmetric_input_symmetrized(self):
        g = from_adjacency({0: [1]})  # no reverse listed
        assert g.has_edge(1, 0)

    def test_forward_reference_grows(self):
        g = from_adjacency({0: [9]})
        assert g.num_vertices == 10


class TestFromNetworkx:
    def test_roundtrip(self):
        nx = pytest.importorskip("networkx")
        nxg = nx.karate_club_graph()
        g = from_networkx(nxg)
        assert g.num_vertices == nxg.number_of_nodes()
        assert g.num_edges == nxg.number_of_edges()

    def test_relabeling(self):
        nx = pytest.importorskip("networkx")
        nxg = nx.Graph()
        nxg.add_edge("b", "a")
        g = from_networkx(nxg)
        assert g.num_vertices == 2
        assert g.has_edge(0, 1)
