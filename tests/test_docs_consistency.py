"""Consistency checks between documentation and code.

Documentation drift is a bug: these tests pin the claims README/DESIGN
make about the codebase to the actual package contents.
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (REPO / name).read_text(encoding="utf-8")


class TestReadme:
    def test_quickstart_snippet_runs(self):
        """The README quickstart imports must all resolve."""
        from repro.experiments import eval_config
        from repro.graph import load_dataset
        from repro.mining import count_matches
        from repro.patterns import benchmark_schedule
        from repro.sim import simulate

        assert callable(eval_config) and callable(simulate)
        assert callable(load_dataset) and callable(count_matches)
        assert callable(benchmark_schedule)

    def test_examples_listed_exist(self):
        text = read("README.md")
        for match in re.finditer(r"python (examples/\w+\.py)", text):
            assert (REPO / match.group(1)).exists(), match.group(1)

    def test_docs_listed_exist(self):
        text = read("README.md")
        for match in re.finditer(r"`(docs/\w+\.md)`", text):
            assert (REPO / match.group(1)).exists(), match.group(1)

    def test_architecture_modules_exist(self):
        for module in ("graph", "patterns", "mining", "sim", "core", "experiments"):
            assert (REPO / "src" / "repro" / module / "__init__.py").exists()


class TestDesign:
    def test_paper_confirmation_present(self):
        text = read("DESIGN.md")
        assert "matches the target paper" in text

    def test_benchmark_files_referenced_exist(self):
        text = read("DESIGN.md")
        for match in re.finditer(r"`(benchmarks/\w+\.py)`", text):
            assert (REPO / match.group(1)).exists(), match.group(1)


class TestExperimentsDoc:
    def test_results_files_referenced_are_produced(self):
        """Every results/*.txt EXPERIMENTS.md cites has a producing bench."""
        text = read("EXPERIMENTS.md")
        cited = set(re.findall(r"results/(\w+)\.txt", text))
        bench_sources = "".join(
            p.read_text(encoding="utf-8") for p in (REPO / "benchmarks").glob("test_*.py")
        )
        for name in cited:
            assert f'"{name}"' in bench_sources, f"no bench writes results/{name}.txt"

    def test_every_paper_artifact_covered(self):
        text = read("EXPERIMENTS.md")
        for artifact in (
            "Table 1", "Table 2", "Table 3", "Table 4",
            "Figure 3(a)", "Figure 3(b)", "Figure 9", "Figure 10",
            "Figure 11", "Figure 12", "Figure 13(a)", "Figure 13(b)",
            "Figure 14",
        ):
            assert artifact in text, artifact


class TestVersion:
    def test_package_version_matches_pyproject(self):
        import repro

        pyproject = read("pyproject.toml")
        assert f'version = "{repro.__version__}"' in pyproject
