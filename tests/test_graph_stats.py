"""Unit tests for graph statistics."""

import pytest

from repro.graph import (
    compute_stats,
    degree_skewness,
    empty_graph,
    erdos_renyi_gnm,
    from_edges,
    global_clustering,
    triangle_count,
)
from repro.patterns import triangle
from repro.mining import count_unique_subgraphs


class TestTriangleCount:
    def test_triangle(self):
        g = from_edges([(0, 1), (1, 2), (0, 2)])
        assert triangle_count(g) == 1

    def test_k4(self):
        g = from_edges([(u, v) for u in range(4) for v in range(u + 1, 4)])
        assert triangle_count(g) == 4

    def test_path_has_none(self):
        g = from_edges([(0, 1), (1, 2), (2, 3)])
        assert triangle_count(g) == 0

    def test_matches_pattern_miner(self, small_er):
        assert triangle_count(small_er) == count_unique_subgraphs(small_er, triangle())

    def test_fig1_graph(self, tiny_graph):
        # Figure 1's input graph contains 7 triangles.
        assert triangle_count(tiny_graph) == count_unique_subgraphs(tiny_graph, triangle())


class TestClustering:
    def test_complete_graph(self):
        g = from_edges([(u, v) for u in range(5) for v in range(u + 1, 5)])
        assert global_clustering(g) == pytest.approx(1.0)

    def test_triangle_free(self):
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])  # 4-cycle
        assert global_clustering(g) == 0.0

    def test_empty(self):
        assert global_clustering(empty_graph(10)) == 0.0


class TestSkewness:
    def test_regular_zero(self):
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert degree_skewness(g) == pytest.approx(0.0)

    def test_star_positive(self):
        g = from_edges([(0, i) for i in range(1, 20)])
        assert degree_skewness(g) > 2.0

    def test_empty(self):
        assert degree_skewness(empty_graph(0)) == 0.0


class TestComputeStats:
    def test_fields(self, small_er):
        stats = compute_stats(small_er)
        assert stats.num_vertices == 30
        assert stats.num_edges == 120
        assert stats.average_degree == pytest.approx(8.0)
        assert stats.max_degree >= 8
        assert 0.0 <= stats.clustering <= 1.0

    def test_describe(self, small_er):
        text = compute_stats(small_er).describe()
        assert "|V|=30" in text and "|E|=120" in text
