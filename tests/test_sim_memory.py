"""Unit + property tests for the cache models and memory system."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, SimulationError
from repro.sim import (
    Cache,
    MemorySystem,
    PELatencyWindow,
    ReferenceCache,
    Scratchpad,
    SimConfig,
)


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        c = Cache(1024, 2, 64)
        assert not c.lookup(1)
        c.insert(1)
        assert c.lookup(1)
        assert c.hits == 1 and c.misses == 1

    def test_lru_eviction_order(self):
        c = Cache(2 * 64, 2, 64)  # one set, two ways
        c.insert(0)
        c.insert(2)  # hmm: different sets? num_sets=1, all map to set 0
        c.insert(4)  # evicts 0 (LRU)
        assert not c.contains(0)
        assert c.contains(2) and c.contains(4)

    def test_lookup_refreshes_lru(self):
        c = Cache(2 * 64, 2, 64)
        c.insert(0)
        c.insert(2)
        c.lookup(0)  # 0 becomes MRU
        c.insert(4)  # evicts 2
        assert c.contains(0)
        assert not c.contains(2)

    def test_insert_returns_victim(self):
        c = Cache(2 * 64, 2, 64)
        c.insert(0)
        c.insert(2)
        assert c.insert(4) == 0

    def test_reinsert_no_eviction(self):
        c = Cache(2 * 64, 2, 64)
        c.insert(0)
        c.insert(2)
        assert c.insert(0) is None

    def test_set_mapping(self):
        c = Cache(4 * 64, 1, 64)  # 4 sets, direct mapped
        c.insert(0)
        c.insert(1)
        assert c.contains(0) and c.contains(1)  # different sets
        c.insert(4)  # maps to set 0, evicts 0
        assert not c.contains(0)

    def test_contains_does_not_count(self):
        c = Cache(1024, 2, 64)
        c.contains(5)
        assert c.accesses == 0

    def test_hit_rate(self):
        c = Cache(1024, 2, 64)
        assert c.hit_rate == 0.0
        c.insert(1)
        c.lookup(1)
        c.lookup(2)
        assert c.hit_rate == pytest.approx(0.5)

    def test_invalidate_all(self):
        c = Cache(1024, 2, 64)
        c.insert(1)
        c.invalidate_all()
        assert not c.contains(1)

    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            Cache(0, 2, 64)
        with pytest.raises(ConfigError):
            Cache(64, 2, 64)  # fewer lines than ways


class TestScratchpad:
    def test_reserve_release(self):
        spm = Scratchpad(10)
        spm.reserve(6)
        assert spm.free == 4
        spm.release(6)
        assert spm.free == 10

    def test_peak_tracking(self):
        spm = Scratchpad(10)
        spm.reserve(8)
        spm.release(8)
        spm.reserve(2)
        assert spm.peak == 8

    def test_over_reserve(self):
        spm = Scratchpad(4)
        with pytest.raises(SimulationError):
            spm.reserve(5)

    def test_over_release(self):
        spm = Scratchpad(4)
        spm.reserve(2)
        with pytest.raises(SimulationError):
            spm.release(3)


class TestLatencyWindow:
    def test_ema_moves_toward_samples(self):
        w = PELatencyWindow(alpha=0.5, initial=2.0)
        for _ in range(10):
            w.record(100.0)
        assert w.value > 90

    def test_lifetime_average(self):
        w = PELatencyWindow()
        w.record(10)
        w.record(20)
        assert w.lifetime_average == pytest.approx(15.0)

    def test_empty(self):
        assert PELatencyWindow().lifetime_average == 0.0


class TestMemorySystem:
    @pytest.fixture()
    def mem(self):
        return MemorySystem(SimConfig(num_pes=2, l1_kb=1, l2_kb=16))

    def test_line_addrs(self, mem):
        assert mem.line_addrs(0, 64) == [0]
        assert mem.line_addrs(0, 65) == [0, 1]
        assert mem.line_addrs(70, 10) == [1]
        assert mem.line_addrs(0, 0) == []

    def test_install_then_fetch_hits(self, mem):
        mem.install_intermediate(0, [100, 101])
        done = mem.fetch_intermediate(0, [100, 101], now=0.0)
        assert done <= mem.config.l1_hit_cycles + 1
        assert mem.l1_hit_rate(0) == 1.0

    def test_miss_goes_through_l2(self, mem):
        done = mem.fetch_intermediate(0, [500], now=0.0)
        assert done > mem.config.l2_hit_cycles
        assert mem.l1s[0].misses == 1

    def test_l1s_private(self, mem):
        mem.install_intermediate(0, [7])
        mem.fetch_intermediate(1, [7], now=0.0)
        assert mem.l1s[1].misses == 1

    def test_graph_fetch_bypasses_l1(self, mem):
        mem.fetch_graph(0, [900], now=0.0)
        assert mem.l1s[0].accesses == 0
        assert mem.l2.accesses == 1

    def test_second_graph_fetch_hits_l2(self, mem):
        first = mem.fetch_graph(0, [900], now=0.0)
        second_start = first + 1
        second = mem.fetch_graph(0, [900], now=second_start)
        assert (second - second_start) < (first - 0.0)

    def test_eviction_cascades_to_l2(self):
        config = SimConfig(num_pes=1, l1_kb=1, l1_assoc=1, l2_kb=16)
        mem = MemorySystem(config)
        lines = config.l1_lines
        mem.install_intermediate(0, list(range(0, 2 * lines)))
        # Early lines were evicted from L1 into L2.
        evicted = [a for a in range(0, lines) if not mem.l1s[0].contains(a)]
        assert evicted
        assert all(mem.l2.contains(a) for a in evicted)

    def test_latency_recorded(self, mem):
        mem.fetch_intermediate(0, [1, 2, 3], now=0.0)
        assert mem.l1_windows[0].samples == 3

    def test_memory_pressure_zero_when_idle(self, mem):
        assert mem.memory_pressure(1000.0) == 0.0

    def test_overall_hit_rate_aggregates(self, mem):
        mem.install_intermediate(0, [1])
        mem.fetch_intermediate(0, [1], now=0.0)
        mem.fetch_intermediate(1, [2], now=0.0)
        assert mem.overall_l1_hit_rate() == pytest.approx(0.5)


class _ReferenceLRU:
    """Oracle: per-set list-based LRU."""

    def __init__(self, sets, ways):
        self.sets = [[] for _ in range(sets)]
        self.ways = ways

    def access(self, line):
        target = self.sets[line % len(self.sets)]
        if line in target:
            target.remove(line)
            target.append(line)
            return True
        if len(target) >= self.ways:
            target.pop(0)
        target.append(line)
        return False


@settings(max_examples=60, deadline=None)
@given(
    accesses=st.lists(st.integers(0, 40), min_size=1, max_size=120),
    ways=st.integers(1, 4),
    sets_pow=st.integers(0, 3),
)
def test_cache_matches_reference_lru(accesses, ways, sets_pow):
    sets = 2 ** sets_pow
    cache = Cache(sets * ways * 64, ways, 64)
    oracle = _ReferenceLRU(sets, ways)
    for line in accesses:
        hit = cache.lookup(line)
        if not hit:
            cache.insert(line)
        assert hit == ((line in oracle.sets[line % sets]))
        oracle.access(line)


# ----------------------------------------------------------------------
# Flattened Cache vs the retained insertion-ordered-dict ReferenceCache:
# the two models must emit identical hit/miss/eviction sequences over
# recorded random traces (the seed-cache equivalence promised in the
# module docstring of repro/sim/memory.py).
# ----------------------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(
    trace=st.lists(st.integers(0, 48), min_size=1, max_size=160),
    ways=st.integers(1, 4),
    sets_pow=st.integers(0, 3),
)
def test_flat_cache_trace_equivalent_to_reference_cache(trace, ways, sets_pow):
    sets = 2 ** sets_pow
    flat = Cache(sets * ways * 64, ways, 64)
    seed = ReferenceCache(sets * ways * 64, ways, 64)
    assert flat.num_sets == seed.num_sets
    for line in trace:
        flat_hit = flat.lookup(line)
        seed_hit = seed.lookup(line)
        assert flat_hit == seed_hit
        if not flat_hit:
            assert flat.insert(line) == seed.insert(line)
    assert (flat.hits, flat.misses, flat.evictions) == (
        seed.hits, seed.misses, seed.evictions,
    )
    assert flat.hit_rate == seed.hit_rate


@settings(max_examples=60, deadline=None)
@given(
    batches=st.lists(
        st.lists(st.integers(0, 48), min_size=0, max_size=12, unique=True),
        min_size=1,
        max_size=24,
    ),
    ways=st.integers(1, 4),
    sets_pow=st.integers(0, 3),
)
def test_batched_access_lines_matches_sequential_lookups(batches, ways, sets_pow):
    """``access_lines`` over distinct addresses = a sequential ``lookup``
    sweep: same hit mask, same stats, and — via interleaved inserts that
    force evictions — the same downstream LRU state."""
    sets = 2 ** sets_pow
    batched = Cache(sets * ways * 64, ways, 64)
    sequential = Cache(sets * ways * 64, ways, 64)
    for batch in batches:
        mask = batched.access_lines(batch)
        assert len(mask) == len(batch)
        for line, batched_hit in zip(batch, mask):
            assert sequential.lookup(line) == bool(batched_hit)
        # Fill the misses in both models so LRU state keeps evolving.
        misses = [line for line, hit in zip(batch, mask) if not hit]
        assert batched.insert_lines(misses) == [
            e for e in (sequential.insert(line) for line in misses)
            if e is not None
        ]
    assert (batched.hits, batched.misses, batched.evictions) == (
        sequential.hits, sequential.misses, sequential.evictions,
    )
