"""Task-tree SoA kernels: differential parity and escape correctness.

The struct-of-arrays task tree (``core/task_tree.py``) routes its hot
decisions — ``tree_select``/``tree_fill``/``tree_complete`` — through
the backend kernel set when one is bound.  Like the macro-step core,
the kernels must be *bit-identical* to the interpreted object path:
every accounted metric, including the scheduler's own stall/wait
counters, feeds ``repro validate`` and the golden registry.  Layers:

* **Kernel parity** — whole simulations, all five policies × both
  golden patterns, ``tree_kernels=True`` (interpreted reference loops
  under pure, plus every compiled backend that built) vs the pinned
  object path: identical ``RunMetrics`` dicts.
* **Routing attribution** — the ``op_calls``/``op_escapes`` counters
  must reflect where decisions actually ran: kernels when forced,
  object path when pinned off or instrumented.
* **Instrumented fallback** — a ``TraceRecorder`` must push every
  decision down the object path (hooks keep firing) while changing no
  accounted metric.
* **Edge cells** — token exhaustion, pinned conservative mode, the
  macro-drain × tree-kernel composition with random escapes, and
  hypothesis-driven random tree geometries.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import task_tree
from repro.graph import load_dataset
from repro.patterns import benchmark_schedule
from repro.sim import SimConfig, backend, simulate
from repro.sim.accelerator import Accelerator
from repro.sim.trace import TraceRecorder
from repro.validate.oracle import ORACLE_POLICIES

#: Backends that actually built on this machine (pure is always first).
AVAILABLE = ["pure"] + [
    name
    for name in ("numba", "cext")
    if backend.available_backends()[name][0]
]

SCALE = 0.2
PATTERNS = ("tc", "4cl")

#: Per-event booking keeps the macro core out of the comparison; the
#: macro × tree-kernel composition gets its own cell below.
CONFIG = SimConfig(backend="pure", macro_step=False)


@pytest.fixture(autouse=True)
def _restore_backend():
    before = backend.active()
    yield
    backend._install(before)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("wi", scale=SCALE)


@pytest.fixture(scope="module")
def schedules():
    return {p: benchmark_schedule(p) for p in PATTERNS}


@pytest.fixture(scope="module")
def object_metrics(graph, schedules):
    """Object-path reference metrics for every (pattern, policy) cell."""
    ref = {}
    for pattern in PATTERNS:
        for policy in ORACLE_POLICIES:
            metrics = simulate(
                graph,
                schedules[pattern],
                policy=policy,
                config=CONFIG.replace(tree_kernels=False),
            )
            ref[pattern, policy] = metrics.to_dict()
    return ref


def _trees(accel):
    return [
        pe.policy.tree for pe in accel.pes if hasattr(pe.policy, "tree")
    ]


def _sum_counter(accel, counter, key):
    return sum(getattr(t, counter)[key] for t in _trees(accel))


class TestKernelParity:
    """Kernels vs object path: byte-identical metrics on every cell."""

    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("policy", ORACLE_POLICIES)
    def test_kernels_match_object_path(
        self, graph, schedules, object_metrics, pattern, policy
    ):
        for name in AVAILABLE:
            accel = Accelerator(
                graph,
                schedules[pattern],
                CONFIG.replace(backend=name, tree_kernels=True),
                policy=policy,
            )
            metrics = accel.run()
            assert metrics.to_dict() == object_metrics[pattern, policy], (
                f"backend {name} tree kernels diverged on {pattern}/{policy}"
            )
            if policy == "shogun":
                # The decisions really ran in the kernels.
                for op in ("select", "fill", "complete"):
                    assert _sum_counter(accel, "op_calls", f"{op}_kernel") > 0, (
                        f"backend {name}: {op} never took the kernel path"
                    )
                assert _sum_counter(accel, "op_escapes", "pinned_off") == 0

    def test_auto_resolution(self, graph, schedules):
        """auto = bound exactly when the active backend is compiled;
        False pins the object path even there."""
        accel = Accelerator(graph, schedules["tc"], CONFIG, policy="shogun")
        assert all(t._kernel_ops is None for t in _trees(accel))
        compiled = [n for n in AVAILABLE if n != "pure"]
        if compiled:
            accel = Accelerator(
                graph,
                schedules["tc"],
                CONFIG.replace(backend=compiled[0]),
                policy="shogun",
            )
            assert all(t._kernel_ops is not None for t in _trees(accel))
            accel = Accelerator(
                graph,
                schedules["tc"],
                CONFIG.replace(backend=compiled[0], tree_kernels=False),
                policy="shogun",
            )
            assert all(t._kernel_ops is None for t in _trees(accel))

    def test_pinned_off_routes_object(self, graph, schedules, object_metrics):
        accel = Accelerator(
            graph,
            schedules["tc"],
            CONFIG.replace(tree_kernels=False),
            policy="shogun",
        )
        metrics = accel.run()
        assert metrics.to_dict() == object_metrics["tc", "shogun"]
        for op in ("select", "fill", "complete"):
            assert _sum_counter(accel, "op_calls", f"{op}_kernel") == 0
            assert _sum_counter(accel, "op_calls", f"{op}_object") > 0
        assert _sum_counter(accel, "op_escapes", "pinned_off") > 0


class TestInstrumentedFallback:
    """Trace hooks pin the object path per call, metrics intact."""

    def test_trace_recorder_forces_object_path(
        self, graph, schedules, object_metrics
    ):
        accel = Accelerator(
            graph,
            schedules["tc"],
            CONFIG.replace(tree_kernels=True),
            policy="shogun",
        )
        recorder = TraceRecorder.attach(accel)
        metrics = accel.run()
        assert metrics.to_dict() == object_metrics["tc", "shogun"]
        # Kernels were bound but every call escaped to the object path.
        assert all(t._kernel_ops is not None for t in _trees(accel))
        for op in ("select", "fill", "complete"):
            assert _sum_counter(accel, "op_calls", f"{op}_kernel") == 0
        assert _sum_counter(accel, "op_escapes", "instrumented") > 0
        assert recorder.spans  # the hooks really observed the tasks

    def test_debug_cross_check_passes(
        self, graph, schedules, object_metrics, monkeypatch
    ):
        """REPRO_TREE_DEBUG cross-checks SoA counters vs the object view
        on every ready_count() read — kernels on, whole run clean."""
        monkeypatch.setattr(task_tree, "_DEBUG_CHECK", True)
        metrics = simulate(
            graph,
            schedules["tc"],
            policy="shogun",
            config=CONFIG.replace(tree_kernels=True),
        )
        assert metrics.to_dict() == object_metrics["tc", "shogun"]


class TestEdgeCells:
    """Token exhaustion, pinned conservative mode, macro composition."""

    def test_token_exhaustion_parity(self, graph, schedules):
        starved = CONFIG.replace(tokens_per_depth=1)
        ref = simulate(
            graph,
            schedules["tc"],
            policy="shogun",
            config=starved.replace(tree_kernels=False),
        )
        assert sum(pm.token_stalls for pm in ref.per_pe) > 0  # really starves
        for name in AVAILABLE:
            metrics = simulate(
                graph,
                schedules["tc"],
                policy="shogun",
                config=starved.replace(backend=name, tree_kernels=True),
            )
            assert metrics.to_dict() == ref.to_dict(), (
                f"backend {name} diverged under token exhaustion"
            )

    @pytest.mark.parametrize("conservative", (True, False))
    def test_pinned_conservative_parity(self, graph, schedules, conservative):
        pinned = CONFIG.replace(conservative_override=conservative)
        ref = simulate(
            graph,
            schedules["4cl"],
            policy="shogun",
            config=pinned.replace(tree_kernels=False),
        )
        for name in AVAILABLE:
            metrics = simulate(
                graph,
                schedules["4cl"],
                policy="shogun",
                config=pinned.replace(backend=name, tree_kernels=True),
            )
            assert metrics.to_dict() == ref.to_dict(), (
                f"backend {name} diverged with conservative={conservative}"
            )

    def test_macro_drain_composition(self, graph, schedules, object_metrics):
        """Macro-step booking + batch dispatch + tree kernels together
        (the production fast path) still match the all-object reference,
        with random macro escapes mixed in."""
        import random

        rng = random.Random(0xC0FFEE)
        for name in AVAILABLE:
            accel = Accelerator(
                graph,
                schedules["4cl"],
                CONFIG.replace(
                    backend=name, macro_step=True, tree_kernels=True
                ),
                policy="shogun",
            )
            accel.macro.fault_hook = lambda pe, task: rng.random() < 0.3
            metrics = accel.run()
            assert accel.macro.counters["injected"] > 0
            assert metrics.to_dict() == object_metrics["4cl", "shogun"], (
                f"backend {name} macro+tree-kernel composition diverged"
            )


class TestRandomGeometries:
    """Random tree shapes: parity must hold for any legal geometry."""

    @settings(max_examples=8, deadline=None)
    @given(
        bunches=st.integers(min_value=1, max_value=4),
        entries=st.integers(min_value=2, max_value=8),
        tokens=st.integers(min_value=1, max_value=8),
        conservative=st.sampled_from((None, True, False)),
    )
    def test_random_geometry_parity(
        self, graph, schedules, bunches, entries, tokens, conservative
    ):
        cell = CONFIG.replace(
            bunches_per_depth=bunches,
            bunch_entries=entries,
            tokens_per_depth=tokens,
            conservative_override=conservative,
        )
        ref = simulate(
            graph,
            schedules["tc"],
            policy="shogun",
            config=cell.replace(tree_kernels=False),
        )
        for name in AVAILABLE:
            metrics = simulate(
                graph,
                schedules["tc"],
                policy="shogun",
                config=cell.replace(backend=name, tree_kernels=True),
            )
            assert metrics.to_dict() == ref.to_dict(), (
                f"backend {name} diverged on geometry "
                f"({bunches},{entries},{tokens},{conservative})"
            )
