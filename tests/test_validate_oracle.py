"""Tests for the cross-policy differential oracle (repro.validate.oracle)."""

from __future__ import annotations

import pytest

import repro.sim.accelerator as accelerator_mod
from repro.sim import SimConfig
from repro.validate import oracle_cell, run_oracle
from repro.validate.oracle import ORACLE_POLICIES


class TestRunOracle:
    def test_agreement_on_fixture(self, small_er, sched_tc):
        report = run_oracle(
            small_er, sched_tc, config=SimConfig(num_pes=2), label="er30"
        )
        assert report.ok, report.render()
        assert len(report.outcomes) == len(ORACLE_POLICIES)
        # 30 vertices: the naive counter runs and agrees.
        assert report.naive_count == report.reference_count
        matches = {out.matches for out in report.outcomes}
        assert matches == {report.reference_count}

    def test_per_depth_totals_agree(self, small_er, sched_4cl):
        report = run_oracle(small_er, sched_4cl, config=SimConfig(num_pes=2))
        assert report.ok, report.render()
        for out in report.outcomes:
            assert out.tasks_per_depth == report.reference_tasks_per_depth
        assert len(report.reference_tasks_per_depth) == 4

    def test_with_invariant_checking(self, small_er, sched_tc):
        report = run_oracle(
            small_er, sched_tc, config=SimConfig(num_pes=2),
            check_invariants=True,
        )
        assert report.ok, report.render()

    def test_naive_limit_skips_counter(self, small_er, sched_tc):
        report = run_oracle(
            small_er, sched_tc, config=SimConfig(num_pes=2), naive_limit=0
        )
        assert report.naive_count is None
        assert report.ok
        assert "naive=skipped" in report.render()

    def test_policy_subset(self, small_er, sched_tc):
        report = run_oracle(
            small_er, sched_tc, config=SimConfig(num_pes=2),
            policies=("shogun", "bfs"),
        )
        assert [out.policy for out in report.outcomes] == ["shogun", "bfs"]
        assert report.ok

    def test_detects_corrupted_match_count(
        self, small_er, sched_tc, monkeypatch
    ):
        real_simulate = accelerator_mod.simulate

        def corrupt_shogun(graph, schedule, *, policy="shogun", config=None):
            metrics = real_simulate(
                graph, schedule, policy=policy, config=config
            )
            if policy == "shogun":
                metrics.matches += 1
            return metrics

        monkeypatch.setattr(accelerator_mod, "simulate", corrupt_shogun)
        report = run_oracle(small_er, sched_tc, config=SimConfig(num_pes=2))
        assert not report.ok
        assert any("shogun" in d for d in report.disagreements)
        assert "MISMATCH" in report.render()

    def test_detects_corrupted_depth_totals(
        self, small_er, sched_tc, monkeypatch
    ):
        real_simulate = accelerator_mod.simulate

        def corrupt_depths(graph, schedule, *, policy="shogun", config=None):
            metrics = real_simulate(
                graph, schedule, policy=policy, config=config
            )
            if policy == "dfs":
                metrics.tasks_per_depth[0] += 1
            return metrics

        monkeypatch.setattr(accelerator_mod, "simulate", corrupt_depths)
        report = run_oracle(small_er, sched_tc, config=SimConfig(num_pes=2))
        assert not report.ok
        assert any("per-depth" in d and "dfs" in d for d in report.disagreements)

    def test_render_lists_every_policy(self, small_er, sched_tc):
        report = run_oracle(small_er, sched_tc, config=SimConfig(num_pes=2))
        text = report.render()
        for policy in ORACLE_POLICIES:
            assert policy in text


class TestOracleCell:
    def test_wi_triangle_cell(self):
        report = oracle_cell("wi", "tc", scale=0.3)
        assert report.ok, report.render()
        assert report.naive_count == report.reference_count
        assert report.label == "wi@0.3"

    def test_cell_reuses_run_cell_memo(self):
        # Second call must hit repro.experiments.runner's in-process memo,
        # so it is dramatically cheaper — just assert it stays consistent.
        first = oracle_cell("wi", "tc", scale=0.3)
        second = oracle_cell("wi", "tc", scale=0.3)
        assert first.reference_count == second.reference_count
        assert [o.cycles for o in first.outcomes] == [
            o.cycles for o in second.outcomes
        ]
