"""Unit tests for the SNAP-style edge-list I/O."""

import random

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import load_edge_list, load_edge_list_reference, save_edge_list


def test_roundtrip(tmp_path, small_er):
    path = tmp_path / "g.txt"
    save_edge_list(small_er, path)
    loaded = load_edge_list(path)
    assert np.array_equal(loaded.indptr, small_er.indptr)
    assert np.array_equal(loaded.indices, small_er.indices)


def test_comments_ignored(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# header\n0 1\n\n# more\n1 2\n")
    g = load_edge_list(path)
    assert g.num_edges == 2


def test_whitespace_tolerant(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0\t1\n 1   2 \n")
    g = load_edge_list(path)
    assert g.num_edges == 2


def test_name_from_filename(tmp_path):
    path = tmp_path / "mygraph.txt"
    path.write_text("0 1\n")
    assert load_edge_list(path).name == "mygraph"


def test_explicit_name(tmp_path):
    path = tmp_path / "x.txt"
    path.write_text("0 1\n")
    assert load_edge_list(path, name="custom").name == "custom"


def test_malformed_line(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0\n")
    with pytest.raises(GraphError):
        load_edge_list(path)


def test_non_integer(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("a b\n")
    with pytest.raises(GraphError):
        load_edge_list(path)


# ----------------------------------------------------------------------
# fast vectorized parser vs. line-by-line reference (property tests)
# ----------------------------------------------------------------------

def _random_edge_file(rng: random.Random) -> str:
    """A messy but well-formed edge list: comments, blanks, odd spacing."""
    lines = []
    for _ in range(rng.randrange(60)):
        kind = rng.random()
        if kind < 0.15:
            lines.append(f"# comment {rng.randrange(100)}")
        elif kind < 0.25:
            lines.append(rng.choice(["", "   ", "\t"]))
        else:
            sep = rng.choice([" ", "\t", "   ", " \t "])
            pad = rng.choice(["", " ", "\t"])
            u, v = rng.randrange(40), rng.randrange(40)
            extra = " 99" if rng.random() < 0.1 else ""  # legally ignored
            lines.append(f"{pad}{u}{sep}{v}{extra}{pad}")
    text = "\n".join(lines)
    if lines and rng.random() < 0.5:
        text += "\n"
    return text


@pytest.mark.parametrize("seed", range(25))
def test_fast_parser_matches_reference(tmp_path, monkeypatch, seed):
    monkeypatch.setenv("REPRO_CACHE", "0")  # compare parsers, not the store
    path = tmp_path / "g.txt"
    path.write_text(_random_edge_file(random.Random(seed)))
    reference = load_edge_list_reference(path)
    fast = load_edge_list(path)
    assert np.array_equal(fast.indptr, reference.indptr)
    assert np.array_equal(fast.indices, reference.indices)
    assert fast.name == reference.name


@pytest.mark.parametrize("bad_line", ["7", "x y", "1 2.5", "3 z", "0x1 2"])
def test_malformed_error_matches_reference(tmp_path, monkeypatch, bad_line):
    """Malformed input reports the same GraphError text and line number."""
    monkeypatch.setenv("REPRO_CACHE", "0")
    path = tmp_path / "g.txt"
    path.write_text(f"# header\n0 1\n1 2\n{bad_line}\n2 3\n")
    with pytest.raises(GraphError) as reference_error:
        load_edge_list_reference(path)
    with pytest.raises(GraphError) as fast_error:
        load_edge_list(path)
    assert str(fast_error.value) == str(reference_error.value)
    assert ":4:" in str(fast_error.value)  # the offending line number


def test_underscored_integers_parse_like_python(tmp_path, monkeypatch):
    # int("1_0") == 10: numpy rejects the underscore so the fast path
    # must defer to the reference parser rather than erroring.
    monkeypatch.setenv("REPRO_CACHE", "0")
    path = tmp_path / "g.txt"
    path.write_text("1_0 2\n")
    graph = load_edge_list(path)
    assert graph.num_vertices == 11 and graph.num_edges == 1
