"""Unit tests for the SNAP-style edge-list I/O."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import load_edge_list, save_edge_list


def test_roundtrip(tmp_path, small_er):
    path = tmp_path / "g.txt"
    save_edge_list(small_er, path)
    loaded = load_edge_list(path)
    assert np.array_equal(loaded.indptr, small_er.indptr)
    assert np.array_equal(loaded.indices, small_er.indices)


def test_comments_ignored(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# header\n0 1\n\n# more\n1 2\n")
    g = load_edge_list(path)
    assert g.num_edges == 2


def test_whitespace_tolerant(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0\t1\n 1   2 \n")
    g = load_edge_list(path)
    assert g.num_edges == 2


def test_name_from_filename(tmp_path):
    path = tmp_path / "mygraph.txt"
    path.write_text("0 1\n")
    assert load_edge_list(path).name == "mygraph"


def test_explicit_name(tmp_path):
    path = tmp_path / "x.txt"
    path.write_text("0 1\n")
    assert load_edge_list(path, name="custom").name == "custom"


def test_malformed_line(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0\n")
    with pytest.raises(GraphError):
        load_edge_list(path)


def test_non_integer(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("a b\n")
    with pytest.raises(GraphError):
        load_edge_list(path)
