"""Unit tests for the shared search-tree expansion semantics."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.mining import SearchContext, intersect, subtract
from repro.patterns import benchmark_schedule, make_schedule, clique, four_cycle


class TestExpansion:
    def test_root_expansion_is_neighbor_fetch(self, tiny_graph, sched_4cl):
        ctx = SearchContext(tiny_graph, sched_4cl)
        exp = ctx.expand((0,))
        assert list(exp.candidates) == list(tiny_graph.neighbors(0))
        assert len(exp.ops) == 1
        assert exp.ops[0].op == "fetch"
        assert exp.reused_depth is None

    def test_clique_chain_reuses_parent(self, tiny_graph, sched_4cl):
        ctx = SearchContext(tiny_graph, sched_4cl)
        exp = ctx.expand((3, 2))
        assert exp.reused_depth == 1
        expected = intersect(tiny_graph.neighbors(3), tiny_graph.neighbors(2))
        assert list(exp.candidates) == list(expected)

    def test_reuse_plan_clique(self, tiny_graph, sched_4cl):
        ctx = SearchContext(tiny_graph, sched_4cl)
        for d in range(2, sched_4cl.depth):
            reused, conn, disc = ctx.reuse_plan(d)
            assert reused == d - 1
            assert len(conn) == 1 and disc == ()

    def test_ancestor_sets_used(self, tiny_graph, sched_4cl):
        ctx = SearchContext(tiny_graph, sched_4cl)
        s1 = ctx.expand((3,)).candidates
        sets = [None, s1, None, None, None]
        exp = ctx.expand((3, 2), sets)
        recomputed = ctx.expand((3, 2))
        assert list(exp.candidates) == list(recomputed.candidates)

    def test_induced_subtraction(self, tiny_graph):
        sched = make_schedule(four_cycle(), (0, 1, 2, 3), induced=True)
        ctx = SearchContext(tiny_graph, sched)
        exp = ctx.expand((0, 1))  # candidates for depth 2: N(1) \ N(0)
        expected = subtract(tiny_graph.neighbors(1), tiny_graph.neighbors(0))
        assert list(exp.candidates) == list(expected)
        assert any(op.op == "subtract" for op in exp.ops)

    def test_leaf_expand_rejected(self, tiny_graph, sched_4cl):
        ctx = SearchContext(tiny_graph, sched_4cl)
        with pytest.raises(ScheduleError):
            ctx.expand((3, 2, 1, 0))

    def test_bad_length_rejected(self, tiny_graph, sched_4cl):
        ctx = SearchContext(tiny_graph, sched_4cl)
        with pytest.raises(ScheduleError):
            ctx.expand(())


class TestOpAccounting:
    def test_comparisons_positive(self, tiny_graph, sched_4cl):
        ctx = SearchContext(tiny_graph, sched_4cl)
        exp = ctx.expand((3, 2))
        assert exp.total_comparisons == len(tiny_graph.neighbors(3)) + len(
            tiny_graph.neighbors(2)
        )

    def test_intermediate_inputs_identified(self, tiny_graph, sched_4cl):
        ctx = SearchContext(tiny_graph, sched_4cl)
        exp = ctx.expand((3, 2))
        inter = exp.intermediate_inputs
        assert len(inter) == 1
        assert inter[0].ref == 1  # the candidate set for depth 1

    def test_neighbor_inputs_identified(self, tiny_graph, sched_4cl):
        ctx = SearchContext(tiny_graph, sched_4cl)
        exp = ctx.expand((3, 2))
        nbrs = exp.neighbor_inputs
        assert [inp.ref for inp in nbrs] == [2]


class TestChildren:
    def test_symmetry_bound_applied(self, tiny_graph, sched_4cl):
        ctx = SearchContext(tiny_graph, sched_4cl)
        exp = ctx.expand((3,))
        kids = ctx.children((3,), exp.candidates)
        assert kids.tolist() == [0, 1, 2]  # neighbors below 3

    def test_duplicates_removed(self, tiny_graph):
        sched = make_schedule(four_cycle(), (0, 1, 2, 3))
        ctx = SearchContext(tiny_graph, sched)
        exp = ctx.expand((3, 1))
        kids = ctx.children((3, 1), exp.candidates)
        assert 3 not in kids and 1 not in kids

    def test_ascending_order(self, small_er, sched_tt_e):
        ctx = SearchContext(small_er, sched_tt_e)
        exp = ctx.expand((10,))
        kids = ctx.children((10,), exp.candidates)
        assert kids.tolist() == sorted(kids.tolist())

    def test_is_leaf_depth(self, tiny_graph, sched_4cl):
        ctx = SearchContext(tiny_graph, sched_4cl)
        assert ctx.is_leaf_depth(3)
        assert not ctx.is_leaf_depth(2)


class TestReusePlans:
    def test_five_clique_chain(self, tiny_graph):
        sched = benchmark_schedule("5cl")
        ctx = SearchContext(tiny_graph, sched)
        for d in range(2, 5):
            reused, conn, disc = ctx.reuse_plan(d)
            assert reused == d - 1

    def test_tailed_triangle_plan_consistency(self, small_er):
        """Reused-plan expansions must equal from-scratch recomputation."""
        sched = benchmark_schedule("tt_e")
        ctx = SearchContext(small_er, sched)
        for root in range(0, 20, 5):
            exp1 = ctx.expand((root,))
            for v in ctx.children((root,), exp1.candidates)[:3]:
                exp2 = ctx.expand((root, v), [None, exp1.candidates] + [None] * 3)
                scratch = ctx.expand((root, v))
                assert list(exp2.candidates) == list(scratch.candidates)
