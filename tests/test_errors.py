"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConfigError,
    GraphError,
    PatternError,
    ReproError,
    ScheduleError,
    SimulationError,
)

ALL_ERRORS = [GraphError, PatternError, ScheduleError, SimulationError, ConfigError]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_repro_error_is_exception():
    assert issubclass(ReproError, Exception)


def test_catching_base_does_not_mask_builtin():
    with pytest.raises(TypeError):
        try:
            raise TypeError("not ours")
        except ReproError:  # pragma: no cover - must not trigger
            pytest.fail("ReproError must not catch TypeError")
