"""Unit tests for patterns and their named constructors."""

import pytest

from repro.errors import PatternError
from repro.patterns import (
    PAPER_PATTERNS,
    Pattern,
    clique,
    cycle,
    diamond,
    four_cycle,
    get_pattern,
    house,
    star,
    tailed_triangle,
    triangle,
)


class TestConstruction:
    def test_edges_canonicalized(self):
        p = Pattern(3, [(1, 0), (0, 1), (1, 2), (0, 2)])
        assert p.num_edges == 3

    def test_self_loop_rejected(self):
        with pytest.raises(PatternError):
            Pattern(3, [(0, 0), (0, 1), (1, 2)])

    def test_out_of_range_rejected(self):
        with pytest.raises(PatternError):
            Pattern(2, [(0, 3)])

    def test_disconnected_rejected(self):
        with pytest.raises(PatternError):
            Pattern(4, [(0, 1), (2, 3)])

    def test_empty_rejected(self):
        with pytest.raises(PatternError):
            Pattern(0, [])

    def test_single_vertex_ok(self):
        assert Pattern(1, []).num_vertices == 1

    def test_equality_and_hash(self):
        assert triangle() == clique(3)
        assert hash(triangle()) == hash(clique(3))
        assert triangle() != four_cycle()


class TestAccessors:
    def test_adjacency(self):
        p = tailed_triangle()
        assert p.adjacency(2) == frozenset({0, 1, 3})
        assert p.adjacency(3) == frozenset({2})

    def test_degree(self):
        p = diamond()
        assert sorted(p.degree(v) for v in range(4)) == [2, 2, 3, 3]

    def test_has_edge(self):
        p = four_cycle()
        assert p.has_edge(0, 1) and p.has_edge(3, 0)
        assert not p.has_edge(0, 2)

    def test_non_edges(self):
        assert four_cycle().non_edges() == [(0, 2), (1, 3)]
        assert clique(4).non_edges() == []

    def test_relabel(self):
        p = tailed_triangle().relabel([3, 2, 1, 0])
        assert p.degree(1) == 3  # old vertex 2 had degree 3

    def test_relabel_bad_mapping(self):
        with pytest.raises(PatternError):
            triangle().relabel([0, 0, 1])


class TestNamedPatterns:
    def test_sizes(self):
        assert triangle().num_vertices == 3
        assert tailed_triangle().num_vertices == 4
        assert clique(5).num_vertices == 5
        assert diamond().num_vertices == 4
        assert four_cycle().num_vertices == 4
        assert house().num_vertices == 5

    def test_edge_counts(self):
        assert triangle().num_edges == 3
        assert tailed_triangle().num_edges == 4
        assert diamond().num_edges == 5
        assert clique(5).num_edges == 10
        assert four_cycle().num_edges == 4

    def test_star(self):
        p = star(4)
        assert p.num_vertices == 5
        assert p.degree(0) == 4

    def test_bad_sizes(self):
        with pytest.raises(PatternError):
            clique(1)
        with pytest.raises(PatternError):
            cycle(2)
        with pytest.raises(PatternError):
            star(0)

    def test_paper_registry(self):
        assert set(PAPER_PATTERNS) == {"tc", "tt", "4cl", "5cl", "dia", "4cyc"}
        for code, pattern in PAPER_PATTERNS.items():
            assert get_pattern(code) == pattern

    def test_get_pattern_unknown(self):
        with pytest.raises(PatternError):
            get_pattern("hexagon")
