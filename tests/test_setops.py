"""Unit + property tests for sorted-set operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining import (
    as_sorted_array,
    intersect,
    intersect_bounded,
    intersect_multi,
    intersect_multi_reference,
    intersect_reference,
    merge_cost,
    segment_count,
    subtract,
    subtract_bounded,
    subtract_reference,
    truncate_below,
)

sorted_sets = st.lists(st.integers(0, 200), max_size=60).map(
    lambda xs: np.array(sorted(set(xs)), dtype=np.int64)
)


class TestBasics:
    def test_intersect(self):
        a = as_sorted_array([1, 3, 5, 7])
        b = as_sorted_array([3, 4, 5, 6])
        assert list(intersect(a, b)) == [3, 5]

    def test_intersect_empty(self):
        a = as_sorted_array([1, 2])
        assert len(intersect(a, as_sorted_array([]))) == 0
        assert len(intersect(as_sorted_array([]), a)) == 0

    def test_subtract(self):
        a = as_sorted_array([1, 3, 5, 7])
        b = as_sorted_array([3, 4, 5])
        assert list(subtract(a, b)) == [1, 7]

    def test_subtract_empty_rhs(self):
        a = as_sorted_array([1, 2])
        assert list(subtract(a, as_sorted_array([]))) == [1, 2]

    def test_as_sorted_array_dedups(self):
        assert list(as_sorted_array([5, 1, 5, 3])) == [1, 3, 5]

    def test_merge_cost(self):
        assert merge_cost(10, 5) == 15
        assert merge_cost(0, 0) == 0


class TestTruncateBelow:
    def test_cuts_at_bound(self):
        a = as_sorted_array([1, 4, 6, 9])
        assert list(truncate_below(a, 6)) == [1, 4]

    def test_bound_excluded(self):
        a = as_sorted_array([1, 4, 6])
        assert list(truncate_below(a, 4)) == [1]

    def test_none_keeps_all(self):
        a = as_sorted_array([1, 4])
        assert truncate_below(a, None) is a

    def test_bound_above_all(self):
        a = as_sorted_array([1, 4])
        assert list(truncate_below(a, 100)) == [1, 4]

    def test_bound_below_all(self):
        a = as_sorted_array([5, 6])
        assert len(truncate_below(a, 2)) == 0


class TestSegmentCount:
    def test_exact_multiple(self):
        assert segment_count(32, 16) == 2

    def test_rounds_up(self):
        assert segment_count(33, 16) == 3

    def test_zero(self):
        assert segment_count(0, 16) == 0

    def test_bad_segment_size(self):
        with pytest.raises(ValueError):
            segment_count(10, 0)


@settings(max_examples=100, deadline=None)
@given(a=sorted_sets, b=sorted_sets)
def test_intersect_matches_reference(a, b):
    assert list(intersect(a, b)) == intersect_reference(list(a), list(b))


@settings(max_examples=100, deadline=None)
@given(a=sorted_sets, b=sorted_sets)
def test_subtract_matches_reference(a, b):
    assert list(subtract(a, b)) == subtract_reference(list(a), list(b))


@settings(max_examples=60, deadline=None)
@given(a=sorted_sets, b=sorted_sets)
def test_set_algebra(a, b):
    """Intersection + subtraction partition the left operand."""
    inter = set(int(x) for x in intersect(a, b))
    sub = set(int(x) for x in subtract(a, b))
    assert inter | sub == set(int(x) for x in a)
    assert inter & sub == set()


@settings(max_examples=60, deadline=None)
@given(a=sorted_sets, bound=st.integers(-5, 220))
def test_truncate_below_property(a, bound):
    kept = truncate_below(a, bound)
    assert all(int(x) < bound for x in kept)
    dropped = set(int(x) for x in a) - set(int(x) for x in kept)
    assert all(x >= bound for x in dropped)


@settings(max_examples=80, deadline=None)
@given(arrays=st.lists(sorted_sets, min_size=1, max_size=5))
def test_intersect_multi_matches_reference(arrays):
    vectorized = list(intersect_multi(arrays))
    assert vectorized == intersect_multi_reference([list(a) for a in arrays])


@settings(max_examples=80, deadline=None)
@given(a=sorted_sets, b=sorted_sets, bound=st.integers(-5, 220))
def test_bounded_variants_match_reference(a, b, bound):
    trunc_a = list(truncate_below(a, bound))
    assert list(intersect_bounded(a, b, bound)) == intersect_reference(trunc_a, list(b))
    assert list(subtract_bounded(a, b, bound)) == subtract_reference(trunc_a, list(b))
    assert list(intersect_bounded(a, b, None)) == intersect_reference(list(a), list(b))


@settings(max_examples=60, deadline=None)
@given(arrays=st.lists(sorted_sets, min_size=2, max_size=5))
def test_chained_comparison_accounting_matches_reference(arrays):
    """The accounted merge cost of a vectorized left-to-right chain equals
    the cost of the same chain over the pure-Python reference: equal
    survivor sizes at every step imply equal ``merge_cost`` sums, which is
    the invariant the simulator's FU accounting relies on."""
    vec, ref = arrays[0], list(arrays[0])
    vec_cost = ref_cost = 0
    for arr in arrays[1:]:
        vec_cost += merge_cost(len(vec), len(arr))
        ref_cost += merge_cost(len(ref), len(arr))
        vec = intersect(vec, arr)
        ref = intersect_reference(ref, list(arr))
        assert list(vec) == ref
    assert vec_cost == ref_cost


class TestAsSortedArrayFastPath:
    def test_sorted_unique_ndarray_is_zero_copy_view(self):
        base = np.array([1, 4, 9], dtype=np.int64)
        out = as_sorted_array(base)
        assert out.base is base or out.base is not None
        assert not out.flags.writeable
        assert list(out) == [1, 4, 9]

    def test_unsorted_ndarray_still_normalized(self):
        out = as_sorted_array(np.array([9, 1, 4, 4], dtype=np.int64))
        assert list(out) == [1, 4, 9]
        assert not out.flags.writeable

    def test_empty_inputs_share_singleton(self):
        a = as_sorted_array(np.empty(0, dtype=np.int64))
        b = as_sorted_array([])
        assert a is b
        assert not a.flags.writeable

    def test_result_mutation_rejected(self):
        out = as_sorted_array([3, 1])
        with pytest.raises(ValueError):
            out[0] = 7

    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(st.integers(-1000, 1000), max_size=60))
    def test_ndarray_and_list_paths_agree(self, values):
        from_list = as_sorted_array(values)
        from_array = as_sorted_array(np.asarray(values, dtype=np.int64))
        assert list(from_list) == list(from_array) == sorted(set(values))
