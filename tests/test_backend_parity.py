"""Differential parity tests: every kernel backend against pure.

Three layers, mirroring how the backends are built:

* **Loop parity** — the shared loop bodies in ``sim/backend/_loops.py``
  (what numba JITs, and what the C source mirrors) run *interpreted*
  against the pure/numpy reference on fuzzed inputs.  This covers the
  numba backend's numerics even on machines without numba installed.
* **Kernel parity** — every *available* backend's kernel set against
  pure: identical outputs and identical accounted side effects (cache
  stamps/ticks, EMA window state).
* **Simulation parity** — whole fuzz-corpus simulations must produce
  byte-identical ``RunMetrics`` under every available backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mining.setops import (
    as_sorted_array,
    intersect,
    intersect_multi,
    subtract,
)
from repro.sim import SimConfig, backend, simulate
from repro.sim.backend import _loops
from repro.sim.backend import pure as pure_backend
from repro.sim.memory import Cache, PELatencyWindow
from repro.validate.fuzz import build_config, build_graph, case_rng, make_case

#: Backends that actually built on this machine (pure is always first).
AVAILABLE = ["pure"] + [
    name
    for name in ("numba", "cext")
    if backend.available_backends()[name][0]
]


@pytest.fixture(autouse=True)
def _restore_backend():
    before = backend.active()
    yield
    backend._install(before)


def _sorted_set(rng, size, universe):
    values = sorted(rng.sample(range(universe), min(size, universe)))
    return as_sorted_array(values)


def _operand_cases(seed=7, count=40):
    """Fuzzed operand pairs spanning both loop regimes (merge + gallop)."""
    rng = case_rng(seed, 0)
    cases = []
    for _ in range(count):
        universe = rng.choice((30, 200, 5000))
        a = _sorted_set(rng, rng.randint(0, 60), universe)
        b = _sorted_set(rng, rng.randint(0, 2000), universe)
        cases.append((a, b))
    # Deterministic extremes: empty, singleton, disjoint, identical,
    # and a gallop-regime pair (len(a) * 32 < len(b)).
    cases += [
        (as_sorted_array([]), as_sorted_array([])),
        (as_sorted_array([3]), as_sorted_array([1, 2, 3, 4])),
        (as_sorted_array([1, 2]), as_sorted_array([10, 20])),
        (as_sorted_array([5, 9]), as_sorted_array([5, 9])),
        (as_sorted_array([10, 5000]), as_sorted_array(list(range(0, 9000, 2)))),
    ]
    return cases


class TestLoopParity:
    """Interpreted ``_loops`` bodies vs the numpy reference."""

    @pytest.mark.parametrize("a,b", _operand_cases())
    def test_intersect_loop(self, a, b):
        out = np.empty(max(len(a), 1), dtype=np.int64)
        small, large = (a, b) if len(a) <= len(b) else (b, a)
        k = _loops.intersect_loop(small, large, out)
        np.testing.assert_array_equal(out[:k], np.intersect1d(a, b))

    @pytest.mark.parametrize("a,b", _operand_cases(seed=11))
    def test_subtract_loop(self, a, b):
        out = np.empty(max(len(a), 1), dtype=np.int64)
        k = _loops.subtract_loop(a, b, out)
        np.testing.assert_array_equal(out[:k], np.setdiff1d(a, b))

    def test_ema_fold_loop_bit_identical(self):
        for n in (1, 3, 8, 17, 300):
            window = PELatencyWindow()
            for _ in range(n):
                window.record(37.25)
            state = np.array([2.0, 0.0], dtype=np.float64)
            _loops.ema_fold_loop(state, window.alpha, 37.25, n)
            assert state[0] == window.value
            assert state[1] == window.total_latency


def _filled_cache(lines=32, assoc=4, line_bytes=64, resident=()):
    cache = Cache(lines * line_bytes, assoc, line_bytes, "t")
    for addr in resident:
        cache.insert(addr)
    return cache


def _span_cases():
    """(resident lines, span) cases covering hit, miss and conflict."""
    return [
        (range(0, 16), (0, 15)),        # fully resident
        (range(0, 16), (0, 16)),        # one line short -> miss
        ((), (3, 5)),                   # empty cache
        (range(0, 8), (2, 2)),          # single line
        ([0, 8, 16, 24], (0, 0)),       # conflict set, way search
        (range(100, 140), (100, 131)),  # wider than num_sets
    ]


class TestKernelParity:
    @pytest.mark.parametrize("name", AVAILABLE)
    @pytest.mark.parametrize("a,b", _operand_cases(seed=3, count=15))
    def test_intersect_and_subtract(self, name, a, b):
        kernels = backend.activate(name)
        np.testing.assert_array_equal(
            kernels.intersect(a, b), pure_backend.intersect(a, b)
        )
        np.testing.assert_array_equal(
            kernels.subtract(a, b), pure_backend.subtract(a, b)
        )

    @pytest.mark.parametrize("name", AVAILABLE)
    def test_intersect_multi_kernel(self, name):
        """Direct kernel parity on presorted chains (the dispatcher's
        general case), including chains whose survivor goes empty."""
        kernels = backend.activate(name)
        rng = case_rng(29, 4)
        for count in (2, 3, 4, 6):
            for _ in range(10):
                arrays = sorted(
                    (_sorted_set(rng, rng.randint(1, 80), 150)
                     for _ in range(count)),
                    key=len,
                )
                if not len(arrays[0]):
                    continue
                np.testing.assert_array_equal(
                    kernels.intersect_multi(arrays),
                    pure_backend.intersect_multi(arrays),
                )
        # Disjoint chain: the survivor empties mid-way.
        disjoint = [
            as_sorted_array([1, 2, 3]),
            as_sorted_array([10, 20, 30]),
            as_sorted_array([100, 200, 300]),
        ]
        assert len(kernels.intersect_multi(disjoint)) == 0

    @pytest.mark.parametrize("name", AVAILABLE)
    def test_dispatched_setops_match_numpy_oracle(self, name):
        backend.activate(name)
        rng = case_rng(13, 2)
        for _ in range(25):
            a = _sorted_set(rng, rng.randint(0, 50), 300)
            b = _sorted_set(rng, rng.randint(0, 50), 300)
            c = _sorted_set(rng, rng.randint(0, 50), 300)
            np.testing.assert_array_equal(intersect(a, b), np.intersect1d(a, b))
            np.testing.assert_array_equal(subtract(a, b), np.setdiff1d(a, b))
            np.testing.assert_array_equal(
                intersect_multi([a, b, c]),
                np.intersect1d(np.intersect1d(a, b), c),
            )

    @pytest.mark.parametrize("name", AVAILABLE)
    @pytest.mark.parametrize("resident,span", _span_cases())
    def test_span_resident_stamp_state_parity(self, name, resident, span):
        kernels = backend.activate(name)
        mine = _filled_cache(resident=resident)
        ref = _filled_cache(resident=resident)
        got = kernels.span_resident_stamp(mine, span[0], span[1])
        want = pure_backend.span_resident_stamp(ref, span[0], span[1])
        assert got == want
        np.testing.assert_array_equal(mine._tags, ref._tags)
        np.testing.assert_array_equal(mine._stamps, ref._stamps)
        assert mine._tick == ref._tick

    @pytest.mark.parametrize("name", AVAILABLE)
    def test_ema_fold_window_parity(self, name):
        kernels = backend.activate(name)
        for n in (1, 3, 8, 17, 300):
            scratch = np.zeros(2, dtype=np.float64)
            mine = PELatencyWindow()
            ref = PELatencyWindow()
            kernels.ema_fold(mine, 21.5, n, scratch)
            pure_backend.ema_fold(ref, 21.5, n)
            assert mine.value == ref.value
            assert mine.total_latency == ref.total_latency
            assert mine.samples == ref.samples


class TestSimulationParity:
    """Whole-run byte-identity across every available backend."""

    @pytest.mark.parametrize("index", [0, 3, 5])
    def test_fuzz_case_metrics_identical(self, index):
        if len(AVAILABLE) < 2:
            pytest.skip("only the pure backend is available")
        case = make_case(seed=2024, index=index)
        graph = build_graph(case)
        config = build_config(case)
        from repro.patterns import benchmark_schedule

        schedule = benchmark_schedule(case.pattern)
        results = {}
        for name in AVAILABLE:
            run_config = config.replace(backend=name)
            metrics = simulate(graph, schedule, policy="shogun", config=run_config)
            results[name] = metrics.to_dict()
        reference = results.pop("pure")
        for name, result in results.items():
            assert result == reference, f"backend {name} diverged from pure"

    def test_golden_cell_identical_across_backends(self):
        if len(AVAILABLE) < 2:
            pytest.skip("only the pure backend is available")
        from repro.experiments import eval_config
        from repro.graph import load_dataset
        from repro.patterns import benchmark_schedule

        graph = load_dataset("wi", scale=0.1)
        schedule = benchmark_schedule("tc")
        results = {}
        for name in AVAILABLE:
            config = eval_config().replace(backend=name)
            results[name] = simulate(
                graph, schedule, policy="shogun", config=config
            ).to_dict()
        reference = results.pop("pure")
        for name, result in results.items():
            assert result == reference, f"backend {name} diverged from pure"
