"""Chaos and integration tests for distributed sweep execution.

Covers the acceptance criteria of docs/distributed.md: a distributed
sweep is byte-identical to a serial one (rendered output and cache
entries), a worker SIGKILLed mid-cell has its cells retried elsewhere
with the death recorded as a failure domain and no ``/dev/shm``
residue, a heartbeat-silent worker is expired and its queued cells
reclaimed, and a connection severed between computing a result and
delivering it produces neither a lost nor a double-counted cell.

Everything deterministic runs on the in-process transport — the
scheduler, monitor and worker agents on one event loop, with fault
injection through :class:`~repro.service.faults.FaultInjector` plans
and the :class:`~repro.service.faults.FaultyConnection` wrapper.  The
process-level chaos (real SIGKILL, real EOF) runs spawned
``python -m repro worker`` subprocesses over a unix socket, driven by
``REPRO_FAULTS`` plans injected into the first worker only.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.distributed import (
    DistributedOrchestrator,
    DistributedScheduler,
    WorkerAgent,
)
from repro.experiments import clear_run_cache, eval_config, figure3a
from repro.experiments.runner import simulate_cell
from repro.graph.arena import live_segment_names
from repro.orchestrator import CellSpec, Orchestrator, ResultCache, cell_key
from repro.orchestrator.executor import PersistentCellExecutor
from repro.service import (
    AsyncServiceClient,
    FaultInjector,
    FaultPlan,
    FaultSpecError,
    FaultyConnection,
    InProcListener,
)

SCALE = 0.05
OVERRIDES = {"figure3a": {"widths": (1, 2)}}  # 4 cells, fast


@pytest.fixture(autouse=True)
def _clean_memo():
    clear_run_cache()
    yield
    clear_run_cache()


def _grid_specs():
    """Four cells in two placement groups (two datasets, two policies)."""
    specs = {}
    for dataset in ("wi", "as"):
        for policy in ("shogun", "bfs"):
            spec = CellSpec(dataset, "tc", policy, SCALE, eval_config(), True)
            specs[cell_key(spec)] = spec
    return specs


def _one_group_specs():
    """Four cells in a single placement group (a config-width sweep)."""
    specs = {}
    for pes in (1, 2, 4, 8):
        spec = CellSpec("wi", "tc", "shogun", SCALE, eval_config(num_pes=pes), True)
        specs[cell_key(spec)] = spec
    return specs


def _cache_keys(root):
    """Content-addressed entry names in one cache tree (layout-free)."""
    return {
        path.name for path in root.rglob("*.json")
        if path.name != "last-run.json"
    }


# ----------------------------------------------------------------------
# fault plan parsing and injector semantics
# ----------------------------------------------------------------------

class TestFaultPlans:
    def test_parse_all_directives(self):
        plan = FaultPlan.parse(
            "kill:cell:2, sever:result:1; mute:heartbeat:3, delay:heartbeat:0.5"
        )
        assert plan.kill_at_cell == 2
        assert plan.sever_at_result == 1
        assert plan.mute_heartbeats_after == 3
        assert plan.heartbeat_delay == 0.5

    def test_empty_and_none_parse_to_noop(self):
        assert FaultPlan.parse(None).empty
        assert FaultPlan.parse("  ").empty
        assert not FaultPlan.parse("mute:heartbeat").empty

    def test_unknown_directive_fails_loudly(self):
        with pytest.raises(FaultSpecError, match="unknown"):
            FaultPlan.parse("kill:worker:1")
        with pytest.raises(FaultSpecError, match="malformed"):
            FaultPlan.parse("kill:cell:soon")

    def test_from_env(self):
        injector = FaultInjector.from_env({"REPRO_FAULTS": "sever:result:2"})
        assert not injector.should_sever_result()  # result 1
        assert injector.should_sever_result()  # result 2

    def test_mute_after_n_heartbeats(self):
        injector = FaultInjector(FaultPlan(mute_heartbeats_after=1))
        assert not injector.drop_heartbeat()  # the one allowed beat
        assert injector.drop_heartbeat()
        assert injector.drop_heartbeat()

    def test_empty_plan_is_inert(self):
        injector = FaultInjector()
        injector.on_cell_start()  # must not SIGKILL the test runner
        assert not injector.should_sever_result()
        assert not injector.drop_heartbeat()
        assert injector.heartbeat_delay() == 0.0


class TestFaultyConnection:
    def test_drops_and_severs_by_op(self):
        class Recorder:
            def __init__(self):
                self.sent, self.closed = [], False

            async def send(self, message):
                self.sent.append(message)

            async def close(self):
                self.closed = True

        async def main():
            inner = Recorder()
            conn = FaultyConnection(
                inner, drop_ops=("heartbeat",), sever_on="result", sever_at=2
            )
            await conn.send({"op": "heartbeat"})
            await conn.send({"op": "heartbeat"})
            await conn.send({"op": "pull"})
            await conn.send({"op": "result"})  # first result passes
            with pytest.raises(ConnectionError, match="severed"):
                await conn.send({"op": "result"})
            assert conn.dropped == {"heartbeat": 2}
            assert [m["op"] for m in inner.sent] == ["pull", "result"]
            assert inner.closed

        asyncio.run(main())


# ----------------------------------------------------------------------
# in-process end-to-end: sweep completion and byte identity
# ----------------------------------------------------------------------

async def _start_scheduler(specs, **kwargs):
    listener = InProcListener()
    scheduler = DistributedScheduler(specs, **kwargs)
    task = asyncio.ensure_future(scheduler.run(listeners=[listener]))
    await asyncio.sleep(0)  # let the listener start accepting
    return scheduler, listener, task


class TestInProcSweep:
    def test_two_workers_identical_to_direct_with_locality(self):
        specs = _grid_specs()

        async def main():
            scheduler, listener, task = await _start_scheduler(
                specs, heartbeat_interval=0.1, heartbeat_timeout=5.0
            )
            agents = [
                WorkerAgent(client=AsyncServiceClient.inproc(listener),
                            name=f"local-{i}")
                for i in (1, 2)
            ]
            summaries = await asyncio.gather(*(a.run() for a in agents))
            results, failures = await asyncio.wait_for(task, 60)
            return scheduler, summaries, results, failures

        scheduler, summaries, results, failures = asyncio.run(main())
        assert not failures and set(results) == set(specs)
        assert sum(s["completed"] for s in summaries) == len(specs)

        # Locality: two groups, two workers — each worker got a group
        # (so staged at least one graph); a fast worker may also have
        # stolen into the second graph, which is stealing working as
        # intended, not a placement miss.
        roster = scheduler.board.describe()
        assert [w["state"] for w in roster] == ["drained", "drained"]
        assert all(len(w["staged"]) >= 1 for w in roster)
        staged_union = set()
        for w in roster:
            staged_union.update(w["staged"])
        assert staged_union == {f"wi@{SCALE:g}", f"as@{SCALE:g}"}

        # Byte identity: the wire-round-tripped metrics equal a direct
        # in-process execution of the same cells.
        clear_run_cache()
        for key, spec in specs.items():
            direct = simulate_cell(
                spec.dataset, spec.pattern, spec.policy,
                config=spec.config, scale=spec.scale, verify=spec.verify,
            )
            assert results[key].to_dict() == direct.to_dict()

    def test_heartbeat_silent_worker_expires_and_cells_are_rescued(self):
        specs = _one_group_specs()

        async def main():
            scheduler, listener, task = await _start_scheduler(
                specs, heartbeat_interval=0.1, heartbeat_timeout=0.5,
            )
            # A protocol-level zombie: registers, takes the whole group,
            # then never heartbeats and never finishes anything.
            zombie = AsyncServiceClient.inproc(listener)
            reply = await zombie.request(
                "register", name="zombie", pid=111, slots=1
            )
            assert reply["ok"]
            pulled = await zombie.request("pull", worker=reply["worker"])
            assert pulled["ok"] and "cell" in pulled

            deadline = time.monotonic() + 20
            while scheduler.board.stats["expired"] < 1:
                assert time.monotonic() < deadline, "worker never expired"
                await asyncio.sleep(0.02)

            rescuer = WorkerAgent(
                client=AsyncServiceClient.inproc(listener), name="rescuer"
            )
            summary = await rescuer.run()
            results, failures = await asyncio.wait_for(task, 60)
            await zombie.close()
            return scheduler, summary, results, failures

        scheduler, summary, results, failures = asyncio.run(main())
        assert not failures and set(results) == set(specs)
        stats = scheduler.board.stats
        # The zombie held 1 running + 3 queued cells: expiry reclaimed
        # the queued ones for free and death-retried the running one.
        assert stats["expired"] == 1
        assert stats["reclaimed"] == 3
        assert stats["death_retries"] == 1
        assert summary["completed"] == len(specs)
        dead = [w for w in scheduler.board.describe() if w["state"] == "dead"]
        assert [w["cause"] for w in dead] == ["heartbeat-expired"]

    def test_muted_worker_agent_expires_mid_sweep(self, monkeypatch):
        # The same expiry semantics, but through the real WorkerAgent
        # with a mute:heartbeat fault plan — proving the agent keeps
        # pulling while its (muted) heartbeat lane is what kills it.
        specs = _one_group_specs()
        orig = PersistentCellExecutor.run_cell

        async def slow_run_cell(self, spec, key=None):
            await asyncio.sleep(0.25)  # outlive the heartbeat timeout
            return await orig(self, spec, key)

        monkeypatch.setattr(PersistentCellExecutor, "run_cell", slow_run_cell)

        async def main():
            scheduler, listener, task = await _start_scheduler(
                specs, heartbeat_interval=0.1, heartbeat_timeout=0.4,
            )
            muted = WorkerAgent(
                client=AsyncServiceClient.inproc(listener), name="muted",
                faults=FaultInjector(FaultPlan(mute_heartbeats_after=0)),
            )
            muted_task = asyncio.ensure_future(muted.run())
            deadline = time.monotonic() + 20
            while scheduler.board.stats["expired"] < 1:
                assert time.monotonic() < deadline, "worker never expired"
                await asyncio.sleep(0.02)
            healthy = WorkerAgent(
                client=AsyncServiceClient.inproc(listener), name="healthy"
            )
            healthy_summary = await healthy.run()
            results, failures = await asyncio.wait_for(task, 60)
            await asyncio.wait_for(muted_task, 60)  # drains once declared dead
            return scheduler, healthy_summary, results, failures

        scheduler, healthy_summary, results, failures = asyncio.run(main())
        assert not failures and set(results) == set(specs)
        stats = scheduler.board.stats
        assert stats["expired"] == 1
        assert stats["reclaimed"] >= 2  # queued cells rescued for free
        assert stats["death_retries"] == 1  # the in-flight cell, retried
        # First-result-wins: nothing was recorded twice.
        assert len(scheduler.results) == len(specs)


# ----------------------------------------------------------------------
# subprocess chaos over a real unix socket
# ----------------------------------------------------------------------

def _distributed_orchestrator(tmp_path, **kwargs):
    sock = tmp_path / "d.sock"
    kwargs.setdefault("spawn_workers", 2)
    kwargs.setdefault("heartbeat_interval", 0.2)
    kwargs.setdefault("heartbeat_timeout", 2.0)
    kwargs.setdefault("cache", ResultCache(tmp_path / "dist-cache"))
    return DistributedOrchestrator(f"unix:{sock}", **kwargs), sock


class TestSubprocessSweeps:
    def test_byte_identical_to_serial_including_cache(self, tmp_path):
        serial_cache = ResultCache(tmp_path / "serial-cache")
        serial = Orchestrator(jobs=1, cache=serial_cache).run_experiments(
            ["figure3a"], scale=SCALE, overrides=OVERRIDES
        )
        assert serial.ok

        clear_run_cache()
        orch, sock = _distributed_orchestrator(tmp_path)
        run = orch.run_experiments(["figure3a"], scale=SCALE, overrides=OVERRIDES)
        assert run.ok
        assert run.manifest.computed == run.manifest.total == 4
        assert run.rendered["figure3a"] == serial.rendered["figure3a"]
        # Write-through produced the identical content-addressed entries.
        assert _cache_keys(tmp_path / "dist-cache") == _cache_keys(
            tmp_path / "serial-cache"
        )
        roster = run.manifest.workers
        assert len(roster) == 2
        assert all(w["state"] == "drained" for w in roster)
        assert not sock.exists()  # listener unlinked its socket

        # Warm rerun: everything read through before any worker spawns.
        clear_run_cache()
        orch2, _ = _distributed_orchestrator(
            tmp_path, cache=ResultCache(tmp_path / "dist-cache")
        )
        warm = orch2.run_experiments(
            ["figure3a"], scale=SCALE, overrides=OVERRIDES
        )
        assert warm.manifest.cached == warm.manifest.total == 4
        assert warm.rendered["figure3a"] == serial.rendered["figure3a"]

    def test_sigkilled_worker_cells_retried_elsewhere(self, tmp_path):
        before = live_segment_names()
        orch, sock = _distributed_orchestrator(
            tmp_path, spawn_faults="kill:cell:1"
        )
        run = orch.run_experiments(["figure3a"], scale=SCALE, overrides=OVERRIDES)
        assert run.ok
        assert run.manifest.computed == 4 and run.manifest.failed == 0
        assert run.rendered["figure3a"]  # the sweep still rendered

        board = orch.last_scheduler.board
        # spawn-1 died at its first cell; that cell was death-retried on
        # the survivor, with the dead worker recorded as its domain.
        assert board.stats["death_retries"] >= 1
        assert not board.failures
        dead = [w for w in run.manifest.workers if w["state"] == "dead"]
        assert [w["name"] for w in dead] == ["spawn-1"]
        dead_id = dead[0]["worker"]
        assert any(dead_id in domains for domains in board.domains.values())
        # SIGKILL left nothing behind: no socket, no new shm segments.
        assert not sock.exists()
        assert live_segment_names() <= before

    def test_severed_result_is_neither_lost_nor_double_counted(self, tmp_path):
        orch, sock = _distributed_orchestrator(
            tmp_path, spawn_faults="sever:result:1"
        )
        run = orch.run_experiments(["figure3a"], scale=SCALE, overrides=OVERRIDES)
        assert run.ok
        assert run.manifest.computed == 4 and run.manifest.failed == 0

        board = orch.last_scheduler.board
        # The computed-but-undelivered cell was retried elsewhere...
        assert board.stats["death_retries"] >= 1
        # ...and recorded exactly once: no duplicates slipped through,
        # and the manifest holds each key exactly once.
        assert board.stats["duplicates"] == 0
        computed_keys = [
            c.key for c in run.manifest.cells if c.status == "computed"
        ]
        assert len(computed_keys) == len(set(computed_keys)) == 4
        dead = [w for w in run.manifest.workers if w["state"] == "dead"]
        assert [w["name"] for w in dead] == ["spawn-1"]


# ----------------------------------------------------------------------
# executor close: idempotent, convergent, re-entrant (regression)
# ----------------------------------------------------------------------

class TestExecutorClose:
    def test_double_close_is_idempotent(self):
        executor = PersistentCellExecutor(jobs=1)
        executor.stage("wi", SCALE)
        executor.close()
        executor.close()  # the worker agent's drain + finally pattern
        assert executor.closed

    def test_close_clears_staging_and_rejects_new_work(self):
        executor = PersistentCellExecutor(jobs=1)
        executor.stage("wi", SCALE)
        assert executor.is_staged("wi", SCALE)
        executor.close()
        assert not executor.is_staged("wi", SCALE)
        with pytest.raises(RuntimeError, match="closed"):
            executor.stage("wi", SCALE)
        with pytest.raises(RuntimeError, match="closed"):
            executor.submit(CellSpec("wi", "tc", "shogun", SCALE,
                                     eval_config(), True))

    def test_concurrent_close_waits_for_teardown(self):
        executor = PersistentCellExecutor(jobs=1)
        torn_down = threading.Event()

        class SlowPool:
            def shutdown(self, wait=True, cancel_futures=False):
                time.sleep(0.3)
                torn_down.set()

        executor._pool = SlowPool()
        closer = threading.Thread(target=executor.close)
        closer.start()
        while not executor.closed:  # let the thread take ownership
            time.sleep(0.005)
        executor.close()  # must block until the slow teardown finishes
        assert torn_down.is_set()
        closer.join()

    def test_reentrant_close_from_teardown_does_not_deadlock(self):
        executor = PersistentCellExecutor(jobs=1)
        calls = []

        class ReentrantPool:
            def shutdown(self, wait=True, cancel_futures=False):
                calls.append("shutdown")
                executor.close()  # a finally on the closing stack itself

        executor._pool = ReentrantPool()
        executor.close()
        assert calls == ["shutdown"]
        assert executor.closed
